//! First-class operator topologies: chain transactional operators into a
//! dataflow that is itself a [`TxnEngine`], with an optional concurrent
//! runtime that executes the operators on separate threads.
//!
//! The paper's programming model covers one transactional operator per
//! engine, but real TSPE applications — S-Store's dataflows of transactional
//! stored procedures, multi-stage fraud detection, enrichment → scoring →
//! settlement chains — are *graphs* of such operators. A [`Topology`] wires
//! several [`StreamApp`]s into a DAG: each operator runs its own MorphStream
//! engine (its own TPG, decision model, and scheduling), every upstream
//! operator's `Output` is routed into downstream operators' `Event`s through
//! a first-class [`Route`] (map / filter / fan-out / keyed), and punctuations
//! propagate downstream on every batch boundary.
//!
//! Two execution modes share one semantics (identical state digests and
//! outputs, bit for bit):
//!
//! * the default **serial wave loop** propagates each punctuation through the
//!   whole dataflow on the caller thread, one operator at a time;
//! * with [`TopologyConfig::concurrent`] every operator *instance* runs on
//!   its own thread behind a **bounded channel** of punctuation batches, so
//!   the operators of one dataflow execute concurrently on multicores.
//!   Bounded channels give real back-pressure — a slow downstream operator
//!   makes upstream sends (and ultimately `Pipeline::push`) block, keeping
//!   in-flight memory at O(`channel_capacity` × punctuation interval) — and
//!   per-edge `queue_full_waits` in the final [`RunReport`] make the
//!   back-pressure observable.
//!
//! Operators gain data parallelism through
//! [`OperatorHandle::with_parallelism`]: [`Route::keyed`] hash-partitions the
//! routed events across the `n` parallel instances of the downstream
//! operator, each instance owns its partition's state, and the topology
//! reassembles per-instance outputs into the original event order — so
//! digests and outputs are deterministic regardless of `n`.
//!
//! The assembled `Topology` implements [`TxnEngine`], so
//! [`Pipeline`](crate::Pipeline) sessions, the bench harness's generic drive
//! loop, and trait-driven oracle tests work on a whole dataflow unchanged.
//! Its [`RunReport`] aggregates every operator — per-instance sub-reports
//! (`name#i` under parallelism) are attached as [`OperatorReport`]s when the
//! session finishes, and their commit/abort counts sum to the top-level
//! totals.
//!
//! ```
//! use morphstream::storage::StateStore;
//! use morphstream::{
//!     udfs, EngineConfig, Route, StreamApp, TopologyBuilder, TopologyConfig, TxnBuilder,
//!     TxnEngine, TxnOutcome,
//! };
//! use morphstream_common::TableId;
//!
//! /// Counts word occurrences; emits the word with its committed flag.
//! struct WordCount {
//!     words: TableId,
//! }
//!
//! impl StreamApp for WordCount {
//!     type Event = u64;
//!     type Output = (u64, bool);
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.words, *word, udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, word: &u64, outcome: &TxnOutcome) -> (u64, bool) {
//!         (*word, outcome.committed)
//!     }
//! }
//!
//! /// Tallies how many distinct updates each parity class received.
//! struct ParityTally {
//!     parities: TableId,
//! }
//!
//! impl StreamApp for ParityTally {
//!     type Event = u64;
//!     type Output = bool;
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.parities, *word % 2, udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, _word: &u64, outcome: &TxnOutcome) -> bool {
//!         outcome.committed
//!     }
//! }
//!
//! let store = StateStore::new();
//! let words = store.create_table("words", 0, true);
//! let parities = store.create_table("parities", 0, true);
//! let config = EngineConfig::with_threads(2).with_punctuation_interval(4);
//!
//! // counter --(committed words, keyed by parity)--> two parallel tallies
//! let mut builder = TopologyBuilder::new();
//! let counter = builder.add_operator("word-count", WordCount { words }, store.clone(), config);
//! let tally = builder
//!     .add_operator("parity-tally", ParityTally { parities }, store.clone(), config)
//!     .with_parallelism(2); // each instance owns one parity class
//! builder.connect(
//!     counter,
//!     tally,
//!     Route::keyed(
//!         |word: &u64| word % 2,
//!         |(word, committed): &(u64, bool)| committed.then_some(*word),
//!     ),
//! );
//! // run concurrently: every operator instance on its own thread
//! let mut topology = builder
//!     .build(counter, tally, TopologyConfig::default().with_concurrent(true))
//!     .unwrap();
//!
//! // The topology is an engine: drive it through the ordinary Pipeline API.
//! let mut pipeline = topology.pipeline();
//! pipeline.push_iter([1u64, 2, 3, 4, 5, 6, 7, 8]);
//! let report = pipeline.finish();
//!
//! assert_eq!(report.outputs.len(), 8);
//! // word-count, parity-tally#0, parity-tally#1
//! assert_eq!(report.operators.len(), 3);
//! // per-instance counts sum to the top-level totals
//! let summed: usize = report.operators.iter().map(|op| op.committed).sum();
//! assert_eq!(report.committed, summed);
//! assert_eq!(store.read_latest(parities, 0).unwrap(), 4); // 2, 4, 6, 8
//! ```

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use morphstream_common::metrics::{Breakdown, StageTimings};
use morphstream_common::{EngineConfig, TopologyConfig};
use morphstream_scheduler::SchedulingDecision;
use morphstream_storage::StateStore;

use crate::app::{StreamApp, TxnBuilder};
use crate::engine::MorphStream;
use crate::pipeline::{BatchHook, TxnEngine};
use crate::report::{BatchSummary, EdgeReport, OperatorCounters, OperatorReport, RunReport};

/// Distinguishes handles of different builders, so a handle can never index
/// into a topology it was not created for.
static NEXT_BUILDER_ID: AtomicU64 = AtomicU64::new(0);

/// Typed reference to an operator added to a [`TopologyBuilder`]: carries the
/// operator's event/output types so [`TopologyBuilder::connect`] and
/// [`TopologyBuilder::build`] are checked at compile time, plus the
/// operator's requested parallelism (see
/// [`OperatorHandle::with_parallelism`]).
pub struct OperatorHandle<E, O> {
    builder: u64,
    index: usize,
    parallelism: usize,
    _marker: PhantomData<fn(E) -> O>,
}

impl<E, O> Clone for OperatorHandle<E, O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E, O> Copy for OperatorHandle<E, O> {}

impl<E, O> OperatorHandle<E, O> {
    /// Request `n` parallel instances of this operator. Every incoming edge
    /// of a parallel operator must be a [`Route::keyed`] route: the routed
    /// events are hash-partitioned by their key across the instances, each
    /// instance owns its partition's state, and the topology merges the
    /// per-instance outputs back into the original event order — digests and
    /// outputs are deterministic regardless of `n`.
    ///
    /// The parallelism is recorded when the handle is passed back into the
    /// builder (`connect` or `build`), so request it before wiring the
    /// operator. Parallel operators keep after-batch version reclamation off:
    /// each instance stamps its own timestamp domain over the shared tables,
    /// so no single instance watermark is safe to truncate with.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// The parallelism recorded on this handle.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }
}

impl<E, O> std::fmt::Debug for OperatorHandle<E, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorHandle")
            .field("index", &self.index)
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

/// Why a [`TopologyBuilder::build`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The operator graph contains a cycle; punctuation propagation requires
    /// a DAG.
    Cycle,
    /// The named operator cannot receive events: it is not reachable from the
    /// entry operator.
    Unreachable(String),
    /// The entry operator has an incoming edge; entry events arrive only from
    /// the outside.
    EntryHasUpstream(String),
    /// The terminal operator has an outgoing edge; its outputs are the
    /// topology's outputs.
    TerminalHasDownstream(String),
    /// The entry operator requested parallelism above one; entry events are
    /// not routed, so there is no key to partition them by.
    ParallelEntry(String),
    /// An edge into a parallel operator uses a route without a key; only
    /// [`Route::keyed`] routes can partition events across instances.
    UnkeyedParallelRoute {
        /// Upstream operator of the offending edge.
        from: String,
        /// Downstream (parallel) operator of the offending edge.
        to: String,
    },
    /// An operator not declared as an entry has no upstream edge but feeds
    /// the graph — an undeclared entry point. Every feeding source-like
    /// operator must be declared: either merge the feeds ahead of a single
    /// entry (e.g. with `Source::merge_by_timestamp` in
    /// `morphstream_workloads`) so events arrive as one deterministically
    /// ordered stream, or declare every entry with
    /// [`TopologyBuilder::build_with_entries`].
    MultiEntry {
        /// The declared entry operator.
        entry: String,
        /// The operator acting as an undeclared entry.
        extra: String,
    },
    /// The same operator was listed as an entry twice in
    /// [`TopologyBuilder::build_with_entries`]; each entry receives each
    /// round exactly once.
    DuplicateEntry(String),
    /// The [`TopologyConfig`] failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Cycle => write!(f, "operator topology contains a cycle"),
            TopologyError::Unreachable(name) => {
                write!(
                    f,
                    "operator {name:?} is not reachable from the entry operator"
                )
            }
            TopologyError::EntryHasUpstream(name) => {
                write!(f, "entry operator {name:?} has an incoming edge")
            }
            TopologyError::TerminalHasDownstream(name) => {
                write!(f, "terminal operator {name:?} has an outgoing edge")
            }
            TopologyError::ParallelEntry(name) => {
                write!(
                    f,
                    "entry operator {name:?} cannot be parallel: entry events are not keyed"
                )
            }
            TopologyError::UnkeyedParallelRoute { from, to } => {
                write!(
                    f,
                    "edge {from:?} -> {to:?} must use Route::keyed: {to:?} runs parallel instances"
                )
            }
            TopologyError::MultiEntry { entry, extra } => {
                write!(
                    f,
                    "operator {extra:?} acts as an undeclared entry (no upstream edge) besides \
                     {entry:?}; either merge the feeds ahead of one entry (e.g. with \
                     Source::merge_by_timestamp) or declare every entry with \
                     TopologyBuilder::build_with_entries"
                )
            }
            TopologyError::DuplicateEntry(name) => {
                write!(f, "operator {name:?} is listed as an entry more than once")
            }
            TopologyError::InvalidConfig(reason) => {
                write!(f, "invalid topology configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

/// The transformation half of a [`Route`]: expands one upstream output into
/// downstream events.
type ExpandFn<O, E2> = Box<dyn Fn(&O, &mut Vec<E2>) + Send>;
/// The partition-key half of a [`Route::keyed`] route.
type KeyFn<E2> = Arc<dyn Fn(&E2) -> u64 + Send + Sync>;

/// How one operator's outputs become another operator's events.
///
/// A `Route` is attached to an edge with [`TopologyBuilder::connect`]. The
/// plain constructors ([`Route::map`], [`Route::filter_map`],
/// [`Route::fan_out`]) transform each upstream output into zero or more
/// downstream events; [`Route::keyed`] additionally names the partition key
/// used to spread the routed events across the parallel instances of the
/// downstream operator (see [`OperatorHandle::with_parallelism`]).
pub struct Route<O, E2> {
    expand: ExpandFn<O, E2>,
    key: Option<KeyFn<E2>>,
}

impl<O: 'static, E2: Send + 'static> Route<O, E2> {
    /// Turn every upstream output into exactly one downstream event.
    #[must_use = "a Route does nothing until attached with TopologyBuilder::connect"]
    pub fn map(f: impl Fn(&O) -> E2 + Send + 'static) -> Self {
        Self {
            expand: Box::new(move |output, into| into.push(f(output))),
            key: None,
        }
    }

    /// Turn every upstream output into zero or one downstream events.
    #[must_use = "a Route does nothing until attached with TopologyBuilder::connect"]
    pub fn filter_map(f: impl Fn(&O) -> Option<E2> + Send + 'static) -> Self {
        Self {
            expand: Box::new(move |output, into| into.extend(f(output))),
            key: None,
        }
    }

    /// Fan every upstream output out into any number of downstream events.
    #[must_use = "a Route does nothing until attached with TopologyBuilder::connect"]
    pub fn fan_out<I>(f: impl Fn(&O) -> I + Send + 'static) -> Self
    where
        I: IntoIterator<Item = E2>,
    {
        Self {
            expand: Box::new(move |output, into| into.extend(f(output))),
            key: None,
        }
    }

    /// Like [`Route::fan_out`], but the routed events carry a partition key:
    /// when the downstream operator runs `n` parallel instances, each event
    /// goes to the instance owning `hash(key_fn(event)) % n`, so all events
    /// with one key — and therefore all updates to the state that key guards
    /// — stay on one instance, in arrival order. Key by the downstream
    /// operator's *state* key (the table key its transactions write), not by
    /// an arbitrary attribute, so instances own disjoint state partitions.
    #[must_use = "a Route does nothing until attached with TopologyBuilder::connect"]
    pub fn keyed<I>(
        key_fn: impl Fn(&E2) -> u64 + Send + Sync + 'static,
        f: impl Fn(&O) -> I + Send + 'static,
    ) -> Self
    where
        I: IntoIterator<Item = E2>,
    {
        Self {
            expand: Box::new(move |output, into| into.extend(f(output))),
            key: Some(Arc::new(key_fn)),
        }
    }

    /// Whether this route carries a partition key (required by edges into
    /// parallel operators).
    pub fn is_keyed(&self) -> bool {
        self.key.is_some()
    }
}

/// Deterministic partition assignment for keyed routes.
fn partition_of(key: u64, parts: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % parts
}

/// One punctuation's worth of routed events, already split across the
/// destination operator's instances. `positions[i][j]` is the index the
/// `j`-th event of part `i` had in the round's canonical order, so the
/// destination's outputs can be merged back into that order; identity parts
/// (single-instance destinations) carry an empty positions list.
struct RoutedParts {
    parts: Vec<Box<dyn Any + Send>>,
    positions: Vec<Vec<usize>>,
    total: usize,
}

/// Erased route: maps an upstream output batch (`&Vec<O>`) plus the
/// destination's instance count to the per-instance event batches.
type ErasedRoute = Box<dyn Fn(&(dyn Any + Send), usize) -> RoutedParts + Send>;

fn erase_route<O: Send + 'static, E2: Send + 'static>(route: Route<O, E2>) -> (bool, ErasedRoute) {
    let Route { expand, key } = route;
    let keyed = key.is_some();
    let erased = move |outputs: &(dyn Any + Send), parts_n: usize| -> RoutedParts {
        let outputs = outputs
            .downcast_ref::<Vec<O>>()
            .expect("edge source type checked by OperatorHandle");
        let mut flat: Vec<E2> = Vec::new();
        for output in outputs {
            expand(output, &mut flat);
        }
        let total = flat.len();
        if parts_n <= 1 {
            return RoutedParts {
                parts: vec![Box::new(flat)],
                positions: vec![Vec::new()],
                total,
            };
        }
        let key = key
            .as_ref()
            .expect("parallel destinations require Route::keyed (validated at build)");
        let mut parts: Vec<Vec<E2>> = (0..parts_n).map(|_| Vec::new()).collect();
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); parts_n];
        for (index, event) in flat.into_iter().enumerate() {
            let part = partition_of(key(&event), parts_n);
            parts[part].push(event);
            positions[part].push(index);
        }
        RoutedParts {
            parts: parts
                .into_iter()
                .map(|part| Box::new(part) as Box<dyn Any + Send>)
                .collect(),
            positions,
            total,
        }
    };
    (keyed, Box::new(erased))
}

// ---------------------------------------------------------------------------
// Operator instances
// ---------------------------------------------------------------------------

/// Wraps a user application so its outputs are *tapped* into a queue the
/// topology drains after every batch, instead of accumulating inside the
/// operator's own `RunReport`. The inner app is shared (`Arc`) so parallel
/// instances of one operator run the same application object; outputs move —
/// no `Clone` bound on routed output types.
struct TapApp<A: StreamApp> {
    inner: Arc<A>,
    queue: Arc<Mutex<Vec<A::Output>>>,
}

impl<A: StreamApp> StreamApp for TapApp<A>
where
    A::Output: 'static,
{
    type Event = A::Event;
    type Output = ();

    fn state_access(&self, event: &A::Event, txn: &mut TxnBuilder) {
        self.inner.state_access(event, txn);
    }

    fn post_process(&self, event: &A::Event, outcome: &crate::TxnOutcome) {
        let output = self.inner.post_process(event, outcome);
        self.queue
            .lock()
            .expect("output queue poisoned")
            .push(output);
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.inner.expected_abort_ratio()
    }
}

/// Cumulative session counters of one operator instance's engine. Deltas
/// between two snapshots describe one propagation round.
#[derive(Default, Clone)]
struct InstanceStats {
    events: usize,
    committed: usize,
    aborted: usize,
    redone_ops: usize,
    timings: StageTimings,
    breakdown: Breakdown,
}

impl InstanceStats {
    fn delta(&self, earlier: &InstanceStats) -> InstanceStats {
        InstanceStats {
            events: self.events.saturating_sub(earlier.events),
            committed: self.committed.saturating_sub(earlier.committed),
            aborted: self.aborted.saturating_sub(earlier.aborted),
            redone_ops: self.redone_ops.saturating_sub(earlier.redone_ops),
            timings: self.timings.saturating_sub(&earlier.timings),
            breakdown: self.breakdown.saturating_sub(&earlier.breakdown),
        }
    }

    fn merge(&mut self, other: &InstanceStats) {
        self.events += other.events;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.redone_ops += other.redone_ops;
        self.timings.merge(&other.timings);
        self.breakdown.merge(&other.breakdown);
    }

    fn is_zero(&self) -> bool {
        self.events == 0 && self.committed == 0 && self.aborted == 0
    }
}

/// Object-safe view of one operator *instance*: a typed
/// `MorphStream<TapApp<A>>` behind event/output erasure, so both runtimes can
/// drive heterogeneous instances uniformly (and the concurrent runtime can
/// move each instance onto its own thread).
trait ErasedInstance: Send {
    /// Ingest a batch of events (a boxed `Vec<A::Event>`).
    fn ingest_events(&mut self, events: Box<dyn Any + Send>);
    /// The engine's punctuation interval in events (`usize::MAX` when unset:
    /// one batch per flush).
    fn punctuation_interval(&self) -> usize;
    fn flush(&mut self);
    /// Batches this instance's engine has completed in the current session —
    /// a lock-free signal that new outputs are queued.
    fn completed_batches(&self) -> usize;
    /// Drain the tapped outputs as a boxed `Vec<A::Output>` plus their count.
    fn take_outputs(&mut self) -> (Box<dyn Any + Send>, usize);
    /// Cumulative session counters of this instance's engine.
    fn stats(&self) -> InstanceStats;
    fn last_batch(&self) -> Option<(Duration, SchedulingDecision)>;
    /// Close the instance's session and condense it into a sub-report.
    fn finish_instance(&mut self, name: &str) -> OperatorReport;
}

struct Instance<A: StreamApp>
where
    A::Output: 'static,
{
    engine: MorphStream<TapApp<A>>,
    queue: Arc<Mutex<Vec<A::Output>>>,
}

impl<A: StreamApp> ErasedInstance for Instance<A>
where
    A::Output: 'static,
{
    fn ingest_events(&mut self, events: Box<dyn Any + Send>) {
        let events = events
            .downcast::<Vec<A::Event>>()
            .expect("routed event type checked by OperatorHandle");
        for event in *events {
            self.engine.ingest(event);
        }
    }

    fn punctuation_interval(&self) -> usize {
        self.engine
            .config()
            .punctuation_interval
            .unwrap_or(usize::MAX)
            .max(1)
    }

    fn flush(&mut self) {
        self.engine.flush();
    }

    fn completed_batches(&self) -> usize {
        self.engine.report().batches.len()
    }

    fn take_outputs(&mut self) -> (Box<dyn Any + Send>, usize) {
        let mut queue = self.queue.lock().expect("output queue poisoned");
        let outputs = std::mem::take(&mut *queue);
        let count = outputs.len();
        (Box::new(outputs), count)
    }

    fn stats(&self) -> InstanceStats {
        let report = self.engine.report();
        InstanceStats {
            events: report.events(),
            committed: report.committed,
            aborted: report.aborted,
            redone_ops: report.redone_ops,
            timings: report.stage_timings,
            breakdown: report.breakdown.clone(),
        }
    }

    fn last_batch(&self) -> Option<(Duration, SchedulingDecision)> {
        self.engine
            .report()
            .batches
            .last()
            .map(|b| (b.elapsed, b.decision))
    }

    fn finish_instance(&mut self, name: &str) -> OperatorReport {
        let run = self.engine.finish();
        self.queue.lock().expect("output queue poisoned").clear();
        OperatorReport::from_run(name, &run)
    }
}

/// Merge per-instance output batches back into the round's canonical order:
/// takes `(outputs, count, positions)` per instance plus the round's total
/// size, returns the boxed merged `Vec<A::Output>`. Typed inside, erased at
/// the call sites.
type MergeFn = Arc<dyn Fn(Vec<MergePart>, usize) -> Box<dyn Any + Send> + Send + Sync>;
type MergePart = (Box<dyn Any + Send>, usize, Vec<usize>);

/// An operator instantiated for a topology: its parallel instances, the
/// output-merge function, and the store it runs over.
struct NodeParts {
    name: String,
    instances: Vec<Box<dyn ErasedInstance>>,
    merge: MergeFn,
}

/// Type-erased operator registration: holds the application until
/// [`TopologyBuilder::build`] knows the operator's parallelism and can
/// instantiate the engines.
trait ErasedSpec: Send {
    fn name(&self) -> &str;
    fn store(&self) -> &StateStore;
    fn instantiate(self: Box<Self>, parallelism: usize) -> NodeParts;
}

struct NodeSpec<A: StreamApp> {
    name: String,
    app: A,
    store: StateStore,
    config: EngineConfig,
}

impl<A: StreamApp> ErasedSpec for NodeSpec<A>
where
    A::Output: 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn store(&self) -> &StateStore {
        &self.store
    }

    fn instantiate(self: Box<Self>, parallelism: usize) -> NodeParts {
        let spec = *self;
        let app = Arc::new(spec.app);
        // Parallel instances each stamp their own timestamp domain over the
        // shared tables, so no single instance watermark is safe to truncate
        // with — reclamation stays off above parallelism one.
        let engine_config = if parallelism > 1 {
            spec.config.with_reclaim_after_batch(false)
        } else {
            spec.config
        };
        let instances = (0..parallelism)
            .map(|_| {
                let queue = Arc::new(Mutex::new(Vec::new()));
                let tapped = TapApp {
                    inner: Arc::clone(&app),
                    queue: Arc::clone(&queue),
                };
                Box::new(Instance {
                    engine: MorphStream::new(tapped, spec.store.clone(), engine_config),
                    queue,
                }) as Box<dyn ErasedInstance>
            })
            .collect();
        let merge: MergeFn = Arc::new(|parts: Vec<MergePart>, total: usize| {
            let mut slots: Vec<Option<A::Output>> = Vec::with_capacity(total);
            slots.resize_with(total, || None);
            for (outputs, count, positions) in parts {
                let outputs = outputs
                    .downcast::<Vec<A::Output>>()
                    .expect("instance output type checked by OperatorHandle");
                debug_assert_eq!(
                    count,
                    positions.len(),
                    "outputs desynchronised from routing"
                );
                for (output, position) in outputs.into_iter().zip(positions) {
                    slots[position] = Some(output);
                }
            }
            let merged: Vec<A::Output> = slots
                .into_iter()
                .map(|slot| slot.expect("keyed partition covered every event"))
                .collect();
            Box::new(merged)
        });
        NodeParts {
            name: spec.name,
            instances,
            merge,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// One routed connection between two operators, before instantiation.
struct EdgeSpec {
    dst: usize,
    keyed: bool,
    route: ErasedRoute,
}

/// One entry operator of a multi-entry topology, paired with the dispatch
/// [`Route`] that selects (and converts) this entry's share of the topology's
/// input stream. Pass a list of bindings to
/// [`TopologyBuilder::build_with_entries`].
///
/// The input stream `In` is the *merged* stream of every feed, ordered by
/// timestamp before it reaches the topology; each binding's route then picks
/// out the events belonging to its entry (typically a `Route::filter_map` on
/// a feed tag). Because dispatch operates on the already-merged stream, the
/// resulting state digests are independent of how the individual feeds were
/// interleaved at arrival.
pub struct EntryBinding<In> {
    builder: u64,
    index: usize,
    parallelism: usize,
    route: ErasedRoute,
    _marker: PhantomData<fn(In)>,
}

impl<In: Send + 'static> EntryBinding<In> {
    /// Bind `handle` as an entry fed by `route` applied to the topology's
    /// input events. The route's key (if any) is ignored: entries are
    /// single-instance, so there is nothing to partition.
    pub fn new<E2: Send + 'static, O>(handle: OperatorHandle<E2, O>, route: Route<In, E2>) -> Self {
        let (_keyed, route) = erase_route(route);
        Self {
            builder: handle.builder,
            index: handle.index,
            parallelism: handle.parallelism,
            route,
            _marker: PhantomData,
        }
    }
}

impl<In> std::fmt::Debug for EntryBinding<In> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntryBinding")
            .field("index", &self.index)
            .finish()
    }
}

/// Builds a [`Topology`]: add operators, connect them with [`Route`]s, then
/// [`TopologyBuilder::build`] the dataflow with a designated entry and
/// terminal operator and a [`TopologyConfig`].
pub struct TopologyBuilder {
    id: u64,
    specs: Vec<Box<dyn ErasedSpec>>,
    edges: Vec<Vec<EdgeSpec>>,
    parallelism: Vec<usize>,
}

impl Default for TopologyBuilder {
    // Must go through `new()`: a derived default would use builder id 0,
    // colliding with the first allocated id and defeating the foreign-handle
    // check.
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            id: NEXT_BUILDER_ID.fetch_add(1, Ordering::Relaxed),
            specs: Vec::new(),
            edges: Vec::new(),
            parallelism: Vec::new(),
        }
    }

    /// Add a transactional operator: `app` runs as its own MorphStream engine
    /// over `store` with `config` (its own punctuation interval, TPG,
    /// decision model, and worker pool). Returns the typed handle used to
    /// [`connect`](TopologyBuilder::connect) it into the dataflow; call
    /// [`OperatorHandle::with_parallelism`] on the handle to run several
    /// instances of the operator.
    ///
    /// Operators may share a `StateStore` (and must, when downstream
    /// operators read state written upstream), but two operators must never
    /// write the *same table* — each operator assigns its own timestamps, and
    /// interleaving two timestamp domains in one table's version chains would
    /// un-order them. After-batch version reclamation is per-table (each
    /// engine truncates only the tables it writes, with its own watermark),
    /// so sharing a store no longer disables reclamation; tables an operator
    /// itself accesses through windows are pinned automatically and keep
    /// their history.
    ///
    /// **Cross-operator windows need an explicit pin**: when one operator
    /// *writes* a table that a *different* operator window-reads, pin the
    /// table up front with
    /// [`StateStore::pin_table`](morphstream_storage::StateStore::pin_table).
    /// Windowed accesses are discovered per-engine as batches decompose, so
    /// the reader's automatic pin can land only after the writer's first
    /// reclamation already truncated the shared history.
    #[must_use]
    pub fn add_operator<A: StreamApp>(
        &mut self,
        name: impl Into<String>,
        app: A,
        store: StateStore,
        config: EngineConfig,
    ) -> OperatorHandle<A::Event, A::Output>
    where
        A::Output: 'static,
    {
        let index = self.specs.len();
        self.specs.push(Box::new(NodeSpec {
            name: name.into(),
            app,
            store,
            config,
        }));
        self.edges.push(Vec::new());
        self.parallelism.push(1);
        OperatorHandle {
            builder: self.id,
            index,
            parallelism: 1,
            _marker: PhantomData,
        }
    }

    /// Route `from`'s outputs into `to`'s events: after every batch `from`
    /// completes, the [`Route`] is applied to each output in order and every
    /// event it yields is ingested by `to` (then `to` is flushed, propagating
    /// the punctuation). Add several edges from one operator to fan out
    /// across downstream operators. An edge into a parallel operator must use
    /// [`Route::keyed`].
    ///
    /// # Panics
    ///
    /// Panics if either handle does not belong to this builder.
    pub fn connect<E1, O1, E2, O2>(
        &mut self,
        from: OperatorHandle<E1, O1>,
        to: OperatorHandle<E2, O2>,
        route: Route<O1, E2>,
    ) where
        O1: Send + 'static,
        E2: Send + 'static,
    {
        self.note_handle(from.builder, from.index, from.parallelism);
        self.note_handle(to.builder, to.index, to.parallelism);
        let (keyed, route) = erase_route(route);
        self.edges[from.index].push(EdgeSpec {
            dst: to.index,
            keyed,
            route,
        });
    }

    /// Validate a handle and record the parallelism it carries (the highest
    /// request wins, so a handle upgraded with `with_parallelism` takes
    /// effect whenever any copy of it is passed back in).
    fn note_handle(&mut self, builder: u64, index: usize, parallelism: usize) {
        assert!(
            builder == self.id && index < self.specs.len(),
            "operator handle does not belong to this TopologyBuilder"
        );
        self.parallelism[index] = self.parallelism[index].max(parallelism);
    }

    /// Assemble the dataflow: `entry` receives the topology's input events,
    /// `terminal`'s outputs become the topology's outputs (operators that are
    /// neither the terminal nor connected further act as side-effecting
    /// sinks; their outputs are discarded), and `config` selects the runtime
    /// — the serial wave loop by default, or the concurrent per-operator
    /// thread runtime with bounded channels (see [`TopologyConfig`]).
    ///
    /// Validates that the graph is a DAG, that every operator is reachable
    /// from `entry`, that `entry` has no upstream and is not parallel, that
    /// `terminal` has no downstream, and that every edge into a parallel
    /// operator is keyed. This form declares exactly **one** entry: an
    /// operator that feeds the graph without an upstream of its own is
    /// rejected as [`TopologyError::MultiEntry`] — merge multiple feeds into
    /// one ordered stream ahead of the entry (e.g.
    /// `Source::merge_by_timestamp` in the workloads crate), or declare every
    /// entry explicitly with [`TopologyBuilder::build_with_entries`].
    ///
    /// # Panics
    ///
    /// Panics if either handle does not belong to this builder.
    pub fn build<In, EO, TE, Out>(
        mut self,
        entry: OperatorHandle<In, EO>,
        terminal: OperatorHandle<TE, Out>,
        config: TopologyConfig,
    ) -> Result<Topology<In, Out>, TopologyError>
    where
        In: Send + 'static,
        Out: Send + 'static,
    {
        self.note_handle(entry.builder, entry.index, entry.parallelism);
        self.note_handle(terminal.builder, terminal.index, terminal.parallelism);
        self.build_inner(vec![entry.index], None, terminal.index, config)
    }

    /// Assemble a dataflow with **multiple entry operators**. The topology's
    /// input stream `In` is the timestamp-merged union of every feed; each
    /// [`EntryBinding`]'s route picks its entry's share out of that stream
    /// (typically by a feed tag) and converts it to the entry's event type.
    ///
    /// Semantics: events are staged and dispatched one *round* at a time —
    /// every `min(entry punctuation intervals)` staged events, each binding's
    /// route runs over the staged slice and every entry ingests its share and
    /// flushes, so all entries advance in lock-step rounds and downstream
    /// punctuation alignment works exactly as in the single-entry form. This
    /// holds on both the serial wave loop and the concurrent runtime, which
    /// ships one aligned round per entry per sequence number. Because
    /// dispatch happens after the feeds were merged into one ordered stream,
    /// digests are independent of the feeds' arrival interleaving.
    ///
    /// Entries must be single-instance (no [`OperatorHandle::with_parallelism`])
    /// and must not appear twice. The same validations as
    /// [`TopologyBuilder::build`] apply, with reachability seeded from every
    /// entry. A single binding is allowed — the topology then behaves like
    /// [`TopologyBuilder::build`] with an input-conversion route, except that
    /// the entry flushes per round instead of cutting its own punctuation.
    ///
    /// # Panics
    ///
    /// Panics if a handle does not belong to this builder or `entries` is
    /// empty.
    pub fn build_with_entries<In, TE, Out>(
        mut self,
        entries: Vec<EntryBinding<In>>,
        terminal: OperatorHandle<TE, Out>,
        config: TopologyConfig,
    ) -> Result<Topology<In, Out>, TopologyError>
    where
        In: Send + 'static,
        Out: Send + 'static,
    {
        assert!(
            !entries.is_empty(),
            "build_with_entries requires at least one entry"
        );
        for entry in &entries {
            self.note_handle(entry.builder, entry.index, entry.parallelism);
        }
        self.note_handle(terminal.builder, terminal.index, terminal.parallelism);
        let mut indices = Vec::with_capacity(entries.len());
        let mut routes = Vec::with_capacity(entries.len());
        for entry in entries {
            indices.push(entry.index);
            routes.push(entry.route);
        }
        self.build_inner(indices, Some(routes), terminal.index, config)
    }

    /// Shared assembly path: `dispatch` is `None` for the single-entry form
    /// (entry events are ingested directly and the entry engine cuts its own
    /// punctuations) and `Some` for the multi-entry form (each round is
    /// dispatched through the per-entry routes and entries flush per round).
    fn build_inner<In, Out>(
        mut self,
        entries: Vec<usize>,
        dispatch: Option<Vec<ErasedRoute>>,
        terminal: usize,
        config: TopologyConfig,
    ) -> Result<Topology<In, Out>, TopologyError>
    where
        In: Send + 'static,
        Out: Send + 'static,
    {
        if let Err(reason) = config.validate() {
            return Err(TopologyError::InvalidConfig(reason));
        }
        let n = self.specs.len();

        for (i, &e) in entries.iter().enumerate() {
            if entries[..i].contains(&e) {
                return Err(TopologyError::DuplicateEntry(
                    self.specs[e].name().to_string(),
                ));
            }
        }

        let mut in_degree = vec![0usize; n];
        for edges in &self.edges {
            for edge in edges {
                in_degree[edge.dst] += 1;
            }
        }
        for &e in &entries {
            if in_degree[e] != 0 {
                return Err(TopologyError::EntryHasUpstream(
                    self.specs[e].name().to_string(),
                ));
            }
        }
        // A source-like operator — no upstream but feeding the graph — that
        // was not declared as an entry is a multi-entry attempt; report it as
        // such instead of the misleading `Unreachable` the reachability sweep
        // would produce. (An operator with no edges at all is merely stranded
        // and still reports as unreachable below.)
        if let Some(extra) = (0..n)
            .find(|&i| !entries.contains(&i) && in_degree[i] == 0 && !self.edges[i].is_empty())
        {
            return Err(TopologyError::MultiEntry {
                entry: self.specs[entries[0]].name().to_string(),
                extra: self.specs[extra].name().to_string(),
            });
        }
        if !self.edges[terminal].is_empty() {
            return Err(TopologyError::TerminalHasDownstream(
                self.specs[terminal].name().to_string(),
            ));
        }
        for &e in &entries {
            if self.parallelism[e] > 1 {
                return Err(TopologyError::ParallelEntry(
                    self.specs[e].name().to_string(),
                ));
            }
        }
        for (src, edges) in self.edges.iter().enumerate() {
            for edge in edges {
                if self.parallelism[edge.dst] > 1 && !edge.keyed {
                    return Err(TopologyError::UnkeyedParallelRoute {
                        from: self.specs[src].name().to_string(),
                        to: self.specs[edge.dst].name().to_string(),
                    });
                }
            }
        }

        // Kahn's algorithm: the propagation order. A leftover node means a
        // cycle; an unreached node (in-degree never zero *via an entry*) is
        // caught by the reachability check below.
        let mut degree = in_degree.clone();
        let mut ready: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(idx) = ready.pop() {
            topo_order.push(idx);
            for edge in &self.edges[idx] {
                degree[edge.dst] -= 1;
                if degree[edge.dst] == 0 {
                    ready.push(edge.dst);
                }
            }
        }
        if topo_order.len() != n {
            return Err(TopologyError::Cycle);
        }

        let mut reachable = vec![false; n];
        let mut frontier = Vec::new();
        for &e in &entries {
            reachable[e] = true;
            frontier.push(e);
        }
        while let Some(idx) = frontier.pop() {
            for edge in &self.edges[idx] {
                if !reachable[edge.dst] {
                    reachable[edge.dst] = true;
                    frontier.push(edge.dst);
                }
            }
        }
        if let Some(stranded) = (0..n).find(|&i| !reachable[i]) {
            return Err(TopologyError::Unreachable(
                self.specs[stranded].name().to_string(),
            ));
        }

        // Deduplicate shared stores so per-wave memory accounting counts each
        // underlying store once.
        let mut stores: Vec<StateStore> = Vec::new();
        for spec in &self.specs {
            let store = spec.store();
            if !stores
                .iter()
                .any(|s| s.instance_id() == store.instance_id())
            {
                stores.push(store.clone());
            }
        }

        let names: Vec<String> = self.specs.iter().map(|s| s.name().to_string()).collect();
        // Edge observability rows: the implicit input feeds first (one row
        // per entry), then every routed edge in (source, insertion-order)
        // order.
        let mut edge_labels: Vec<(String, String)> = entries
            .iter()
            .map(|&e| ("(input)".to_string(), names[e].clone()))
            .collect();
        for (src, edges) in self.edges.iter().enumerate() {
            for edge in edges {
                edge_labels.push((names[src].clone(), names[edge.dst].clone()));
            }
        }
        let edge_waits: Vec<Arc<AtomicU64>> = (0..edge_labels.len())
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();

        let parallelism = std::mem::take(&mut self.parallelism);
        let nodes: Vec<NodeParts> = self
            .specs
            .drain(..)
            .zip(&parallelism)
            .map(|(spec, &p)| spec.instantiate(p))
            .collect();
        // In dispatch mode the smallest entry interval defines the round
        // size, so no entry's punctuation is ever exceeded by a round.
        let entry_punctuation = entries
            .iter()
            .map(|&e| nodes[e].instances[0].punctuation_interval())
            .min()
            .expect("at least one entry");
        let single_cut = dispatch.is_none();

        let shared = SessionShared {
            report: RunReport::new(),
            hook: None,
            sink: None,
            waves: 0,
            run_started: None,
            stores,
            edge_labels,
            edge_waits,
        };
        let mut topology = Topology {
            names,
            entry_indices: entries.clone(),
            dispatch,
            terminal_index: terminal,
            entry_punctuation,
            entry_buffer: Vec::new(),
            shared,
            serial: None,
            concurrent: None,
            _marker: PhantomData,
        };
        if config.concurrent {
            topology.concurrent = Some(ConcurrentRuntime::launch(LaunchPlan {
                nodes,
                edges: self.edges,
                topo_order,
                entries,
                single_cut,
                terminal,
                capacity: config.channel_capacity.max(1),
                edge_waits: topology.shared.edge_waits.clone(),
            }));
        } else {
            let pending = (0..n).map(|_| Vec::new()).collect();
            topology.serial = Some(SerialRuntime {
                nodes: nodes.into_iter().map(SerialNode::new).collect(),
                edges: self.edges,
                pending,
                topo_order,
                entries,
                single_cut,
                terminal,
                entry_batches_seen: 0,
                last_stats: AggregateStats::default(),
            });
        }
        Ok(topology)
    }
}

// ---------------------------------------------------------------------------
// Shared session state and the serial runtime
// ---------------------------------------------------------------------------

/// Session state shared by both runtimes: the accumulated report, hook,
/// wave counter, and the edge observability rows.
struct SessionShared<Out> {
    report: RunReport<Out>,
    hook: Option<BatchHook>,
    /// Installed output sink: terminal outputs are drained here instead of
    /// accumulating in the report (see [`TxnEngine::set_output_sink`]).
    sink: Option<crate::pipeline::OutputSink<Out>>,
    waves: usize,
    run_started: Option<Instant>,
    /// The distinct state stores of the operators (shared stores counted
    /// once), for per-wave memory accounting.
    stores: Vec<StateStore>,
    edge_labels: Vec<(String, String)>,
    edge_waits: Vec<Arc<AtomicU64>>,
}

impl<Out> SessionShared<Out> {
    fn bytes_retained(&self) -> u64 {
        self.stores.iter().map(StateStore::bytes_retained).sum()
    }

    /// Deliver a wave's terminal outputs: drained to the installed sink
    /// (counted so `events()` stays exact) or retained in the report.
    fn deliver_outputs(&mut self, outputs: Vec<Out>) {
        match self.sink.as_mut() {
            Some(sink) => {
                self.report.drained_outputs += outputs.len();
                for output in outputs {
                    sink.emit(output);
                }
            }
            None => self.report.outputs.extend(outputs),
        }
    }

    fn edge_report(&self) -> Vec<EdgeReport> {
        self.edge_labels
            .iter()
            .zip(&self.edge_waits)
            .map(|((from, to), waits)| EdgeReport {
                from: from.clone(),
                to: to.clone(),
                queue_full_waits: waits.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn record_round(&mut self, summary: BatchSummary, breakdown: &Breakdown) {
        if let Some(hook) = self.hook.as_mut() {
            hook(&summary);
        }
        let at = self.run_started.map(|s| s.elapsed()).unwrap_or_default();
        self.report.record_batch(summary, breakdown, at);
        self.waves += 1;
    }

    fn reset_session(&mut self) {
        self.waves = 0;
        self.run_started = None;
        self.hook = None;
        for waits in &self.edge_waits {
            waits.store(0, Ordering::Relaxed);
        }
    }
}

/// Cumulative counters aggregated over operators, used to turn two snapshots
/// into one propagation wave's [`BatchSummary`].
#[derive(Default, Clone)]
struct AggregateStats {
    /// Events ingested by the *entry* operator (the topology's input count).
    entry_events: usize,
    totals: InstanceStats,
}

/// One operator of the serial runtime: its instances plus the per-wave
/// position bookkeeping that merges parallel outputs back into order.
struct SerialNode {
    name: String,
    instances: Vec<Box<dyn ErasedInstance>>,
    merge: MergeFn,
    /// Canonical positions (within the current wave) of the events each
    /// instance ingested, in ingestion order.
    wave_positions: Vec<Vec<usize>>,
    /// Events routed to this node in the current wave, across instances.
    wave_total: usize,
}

impl SerialNode {
    fn new(parts: NodeParts) -> Self {
        let instances = parts.instances;
        Self {
            name: parts.name,
            wave_positions: vec![Vec::new(); instances.len()],
            instances,
            merge: parts.merge,
            wave_total: 0,
        }
    }

    /// Ingest one routed round: part `i` goes to instance `i`; the round's
    /// positions are offset by the events already routed this wave, so
    /// several upstream rounds concatenate into one canonical order.
    fn ingest_round(&mut self, round: RoutedParts) {
        let RoutedParts {
            parts,
            positions,
            total,
        } = round;
        debug_assert_eq!(parts.len(), self.instances.len());
        let offset = self.wave_total;
        for (index, (events, pos)) in parts.into_iter().zip(positions).enumerate() {
            self.wave_positions[index].extend(pos.iter().map(|p| p + offset));
            self.instances[index].ingest_events(events);
        }
        self.wave_total += total;
    }

    fn flush_instances(&mut self) {
        for instance in &mut self.instances {
            instance.flush();
        }
    }

    /// Drain this wave's outputs, merged across instances into the canonical
    /// order; `None` when nothing is queued.
    fn take_wave_outputs(&mut self) -> Option<Box<dyn Any + Send>> {
        if self.instances.len() == 1 {
            self.wave_positions[0].clear();
            self.wave_total = 0;
            let (outputs, count) = self.instances[0].take_outputs();
            return (count > 0).then_some(outputs);
        }
        let total = std::mem::replace(&mut self.wave_total, 0);
        let mut parts: Vec<MergePart> = Vec::with_capacity(self.instances.len());
        let mut drained = 0usize;
        for (instance, positions) in self.instances.iter_mut().zip(&mut self.wave_positions) {
            let (outputs, count) = instance.take_outputs();
            drained += count;
            parts.push((outputs, count, std::mem::take(positions)));
        }
        if drained == 0 && total == 0 {
            return None;
        }
        Some((self.merge)(parts, total))
    }

    fn stats(&self) -> InstanceStats {
        let mut sum = InstanceStats::default();
        for instance in &self.instances {
            sum.merge(&instance.stats());
        }
        sum
    }

    /// Live per-instance counters, labelled exactly as `finish_instances`
    /// labels its reports, for observers that cannot wait for `finish`.
    fn live_counters(&self, out: &mut Vec<OperatorCounters>) {
        let parallel = self.instances.len() > 1;
        for (i, instance) in self.instances.iter().enumerate() {
            let stats = instance.stats();
            out.push(OperatorCounters {
                name: if parallel {
                    format!("{}#{i}", self.name)
                } else {
                    self.name.clone()
                },
                events: stats.events as u64,
                committed: stats.committed as u64,
                aborted: stats.aborted as u64,
                batches: instance.completed_batches() as u64,
            });
        }
    }

    fn finish_instances(&mut self) -> Vec<OperatorReport> {
        let parallel = self.instances.len() > 1;
        let name = self.name.clone();
        self.instances
            .iter_mut()
            .enumerate()
            .map(|(i, instance)| {
                let label = if parallel {
                    format!("{name}#{i}")
                } else {
                    name.clone()
                };
                instance.finish_instance(&label)
            })
            .collect()
    }
}

/// The serial wave loop: operators execute one wave at a time on the caller
/// thread, in topological order.
struct SerialRuntime {
    nodes: Vec<SerialNode>,
    edges: Vec<Vec<EdgeSpec>>,
    /// Routed-but-not-yet-ingested rounds per destination operator.
    pending: Vec<Vec<RoutedParts>>,
    topo_order: Vec<usize>,
    entries: Vec<usize>,
    /// Single-entry mode: the entry engine cuts its own punctuations from the
    /// fed stream. In dispatch (multi-entry) mode entries flush per round
    /// like every downstream operator.
    single_cut: bool,
    terminal: usize,
    /// Entry-operator batches already propagated, so ingestion detects new
    /// batch boundaries without locking the output queue per event
    /// (single-entry mode only).
    entry_batches_seen: usize,
    last_stats: AggregateStats,
}

impl SerialRuntime {
    fn aggregate_stats(&self) -> AggregateStats {
        let mut agg = AggregateStats::default();
        for (idx, node) in self.nodes.iter().enumerate() {
            let stats = node.stats();
            if self.entries.contains(&idx) {
                agg.entry_events += stats.events;
            }
            agg.totals.merge(&stats);
        }
        agg
    }
}

// ---------------------------------------------------------------------------
// Concurrent runtime: messages and workers
// ---------------------------------------------------------------------------

/// What a propagation round means to the operators it flows through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundKind {
    /// An ordinary punctuation: the entry operator cuts its batch internally,
    /// downstream operators flush on arrival (punctuation alignment).
    Normal,
    /// A synchronisation round: every operator (the entry included) flushes
    /// its partial batch, so the round drains the whole dataflow.
    Flush,
    /// Flush *and* close every operator session, emitting the per-instance
    /// [`OperatorReport`]s.
    Finish,
}

/// One routed part of a round, addressed to a single operator instance.
struct InstanceMsg {
    seq: usize,
    kind: RoundKind,
    /// Which of the destination's incoming edges this part arrived on, in the
    /// canonical (topological source order) numbering — the alignment slot.
    in_edge: usize,
    events: Box<dyn Any + Send>,
    /// Canonical positions of `events` within the sending edge's round.
    positions: Vec<usize>,
    /// Total events of the sending edge's round (across all instances).
    total: usize,
}

/// One instance's processed round, on its way to the operator's merger.
struct MergerMsg {
    seq: usize,
    kind: RoundKind,
    instance: usize,
    outputs: Box<dyn Any + Send>,
    count: usize,
    positions: Vec<usize>,
    /// Events routed to the whole operator this round (all instances agree).
    total: usize,
}

/// Everything the worker threads report back to the topology.
enum ToTopology {
    /// The terminal operator's merged outputs for one round (sent every
    /// round, possibly empty, so the caller can await round completion).
    Outputs {
        seq: usize,
        outputs: Box<dyn Any + Send>,
    },
    /// One instance finished processing one round.
    RoundStats {
        seq: usize,
        is_entry: bool,
        delta: InstanceStats,
        decision: Option<SchedulingDecision>,
    },
    /// One instance's cumulative counters after a round — the live
    /// observability feed that lets [`Topology::live_rows`] report
    /// per-operator rows while the instances run on worker threads.
    Live {
        node: usize,
        instance: usize,
        counters: OperatorCounters,
    },
    /// One instance closed its session (a `Finish` round).
    Operator {
        node: usize,
        instance: usize,
        report: OperatorReport,
    },
    /// A worker thread panicked; the payload is in the shared panic slot.
    WorkerPanicked,
}

type PanicSlot = Arc<Mutex<Option<Box<dyn Any + Send>>>>;

/// Send with back-pressure accounting: a full channel bumps the edge's
/// `queue_full_waits` before blocking. Returns `false` when the receiver hung
/// up (topology drop or worker panic) — the caller winds down.
fn send_counting(tx: &SyncSender<InstanceMsg>, msg: InstanceMsg, waits: &AtomicU64) -> bool {
    match tx.try_send(msg) {
        Ok(()) => true,
        Err(TrySendError::Full(msg)) => {
            waits.fetch_add(1, Ordering::Relaxed);
            tx.send(msg).is_ok()
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// The sender side of one outgoing edge: the route plus the destination
/// instances' channels.
struct OutEdge {
    route: ErasedRoute,
    dst_in_edge: usize,
    dst_txs: Vec<SyncSender<InstanceMsg>>,
    full_waits: Arc<AtomicU64>,
}

/// Routes one operator's merged round outputs onward: applies every outgoing
/// edge (partitioning keyed routes across the destination's instances) and,
/// on the terminal operator, ships the outputs to the topology.
struct OutRouter {
    edges: Vec<OutEdge>,
    terminal_tx: Option<Sender<ToTopology>>,
}

impl OutRouter {
    fn send_round(&self, seq: usize, kind: RoundKind, outputs: Box<dyn Any + Send>) -> bool {
        for edge in &self.edges {
            let RoutedParts {
                parts,
                positions,
                total,
            } = (edge.route)(outputs.as_ref(), edge.dst_txs.len());
            for ((tx, events), positions) in edge.dst_txs.iter().zip(parts).zip(positions) {
                let msg = InstanceMsg {
                    seq,
                    kind,
                    in_edge: edge.dst_in_edge,
                    events,
                    positions,
                    total,
                };
                if !send_counting(tx, msg, &edge.full_waits) {
                    return false;
                }
            }
        }
        if let Some(tx) = &self.terminal_tx {
            if tx.send(ToTopology::Outputs { seq, outputs }).is_err() {
                return false;
            }
        }
        true
    }
}

/// Where an instance sends its processed rounds: straight through the
/// operator's router (single instance) or to the operator's merger.
enum WorkerOut {
    Router(OutRouter),
    Merger(SyncSender<MergerMsg>),
}

/// One operator instance running on its own thread.
struct InstanceWorker {
    node: usize,
    instance: usize,
    label: String,
    /// Whether this instance is an entry operator (its events count as the
    /// topology's input and its decision labels the round).
    is_entry: bool,
    /// Whether this entry cuts its own punctuations from the fed stream
    /// (single-entry mode); dispatch-mode entries flush per round instead.
    entry_cuts: bool,
    in_edge_count: usize,
    rx: Receiver<InstanceMsg>,
    inst: Box<dyn ErasedInstance>,
    out: WorkerOut,
    collector: Sender<ToTopology>,
}

impl InstanceWorker {
    fn run(mut self) {
        let mut queues: Vec<VecDeque<InstanceMsg>> = (0..self.in_edge_count.max(1))
            .map(|_| VecDeque::new())
            .collect();
        let mut baseline = InstanceStats::default();
        'session: loop {
            // Drain the channel eagerly so bounded-channel back-pressure acts
            // on the upstream sender, then process every aligned round.
            let Ok(msg) = self.rx.recv() else { break };
            queues[msg.in_edge].push_back(msg);
            while queues.iter().all(|q| !q.is_empty()) {
                // Punctuation alignment: one part per incoming edge, in the
                // canonical edge order, all belonging to the same round.
                let round: Vec<InstanceMsg> = queues
                    .iter_mut()
                    .map(|q| q.pop_front().expect("checked non-empty"))
                    .collect();
                let seq = round[0].seq;
                let kind = round[0].kind;
                debug_assert!(
                    round.iter().all(|m| m.seq == seq && m.kind == kind),
                    "edge rounds desynchronised"
                );
                let mut positions: Vec<usize> = Vec::new();
                let mut offset = 0usize;
                for msg in round {
                    positions.extend(msg.positions.iter().map(|p| p + offset));
                    offset += msg.total;
                    self.inst.ingest_events(msg.events);
                }
                // A single-mode entry engine cuts its own punctuations from
                // the fed events; every other operator (dispatch-mode
                // entries included) flushes per round so its batches align
                // with upstream batch boundaries.
                if kind != RoundKind::Normal || !self.entry_cuts {
                    self.inst.flush();
                }
                let stats = self.inst.stats();
                let delta = stats.delta(&baseline);
                baseline = stats;
                let decision = if self.is_entry {
                    self.inst.last_batch().map(|(_, decision)| decision)
                } else {
                    None
                };
                let (outputs, count) = self.inst.take_outputs();
                let delivered = match &self.out {
                    WorkerOut::Router(router) => router.send_round(seq, kind, outputs),
                    WorkerOut::Merger(tx) => tx
                        .send(MergerMsg {
                            seq,
                            kind,
                            instance: self.instance,
                            outputs,
                            count,
                            positions,
                            total: offset,
                        })
                        .is_ok(),
                };
                let _ = self.collector.send(ToTopology::RoundStats {
                    seq,
                    is_entry: self.is_entry,
                    delta,
                    decision,
                });
                let _ = self.collector.send(ToTopology::Live {
                    node: self.node,
                    instance: self.instance,
                    counters: OperatorCounters {
                        name: self.label.clone(),
                        events: baseline.events as u64,
                        committed: baseline.committed as u64,
                        aborted: baseline.aborted as u64,
                        batches: self.inst.completed_batches() as u64,
                    },
                });
                if kind == RoundKind::Finish {
                    let report = self.inst.finish_instance(&self.label);
                    baseline = InstanceStats::default();
                    let _ = self.collector.send(ToTopology::Operator {
                        node: self.node,
                        instance: self.instance,
                        report,
                    });
                }
                if !delivered {
                    break 'session;
                }
            }
        }
    }
}

/// Merges the parallel instances' per-round outputs back into the canonical
/// order and routes them onward.
struct MergerWorker {
    rx: Receiver<MergerMsg>,
    instances: usize,
    merge: MergeFn,
    out: OutRouter,
}

impl MergerWorker {
    fn run(self) {
        let mut queues: Vec<VecDeque<MergerMsg>> =
            (0..self.instances).map(|_| VecDeque::new()).collect();
        'session: loop {
            let Ok(msg) = self.rx.recv() else { break };
            queues[msg.instance].push_back(msg);
            while queues.iter().all(|q| !q.is_empty()) {
                let round: Vec<MergerMsg> = queues
                    .iter_mut()
                    .map(|q| q.pop_front().expect("checked non-empty"))
                    .collect();
                let seq = round[0].seq;
                let kind = round[0].kind;
                let total = round[0].total;
                debug_assert!(
                    round.iter().all(|m| m.seq == seq && m.total == total),
                    "instance rounds desynchronised"
                );
                let parts: Vec<MergePart> = round
                    .into_iter()
                    .map(|m| (m.outputs, m.count, m.positions))
                    .collect();
                let merged = (self.merge)(parts, total);
                if !self.out.send_round(seq, kind, merged) {
                    break 'session;
                }
            }
        }
    }
}

/// Spawn a worker with panic capture: the first panic payload lands in the
/// shared slot and a `WorkerPanicked` notice reaches the topology, which
/// re-raises it on the caller thread with the original payload.
fn spawn_worker(
    thread_name: String,
    panic_slot: PanicSlot,
    collector: Sender<ToTopology>,
    body: impl FnOnce() + Send + 'static,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(body)) {
                let mut slot = panic_slot.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
                drop(slot);
                let _ = collector.send(ToTopology::WorkerPanicked);
            }
        })
        .expect("failed to spawn topology worker thread")
}

/// Per-round accumulator: stats deltas from every operator instance fold in
/// until the round is complete, then the round becomes one [`BatchSummary`].
struct RoundAcc {
    received: usize,
    started: Instant,
    entry_events: usize,
    totals: InstanceStats,
    decision: Option<SchedulingDecision>,
}

impl RoundAcc {
    fn new(started: Instant) -> Self {
        Self {
            received: 0,
            started,
            entry_events: 0,
            totals: InstanceStats::default(),
            decision: None,
        }
    }
}

/// Everything `ConcurrentRuntime::launch` needs to wire the worker threads.
struct LaunchPlan {
    nodes: Vec<NodeParts>,
    edges: Vec<Vec<EdgeSpec>>,
    topo_order: Vec<usize>,
    entries: Vec<usize>,
    /// See [`SerialRuntime::single_cut`].
    single_cut: bool,
    terminal: usize,
    capacity: usize,
    /// Aligned with the builder's edge rows: the first `entries.len()` rows
    /// are the input feeds.
    edge_waits: Vec<Arc<AtomicU64>>,
}

/// The concurrent runtime: every operator instance on its own thread behind
/// a bounded channel, mergers restoring output order for parallel operators,
/// and an unbounded collector channel feeding rounds, outputs, and reports
/// back to the caller thread.
struct ConcurrentRuntime {
    /// One input channel per entry operator (emptied on shutdown so blocked
    /// workers observe the disconnect).
    entry_txs: Vec<SyncSender<InstanceMsg>>,
    entry_waits: Vec<Arc<AtomicU64>>,
    collector_rx: Option<Receiver<ToTopology>>,
    workers: Vec<JoinHandle<()>>,
    panic_slot: PanicSlot,
    total_instances: usize,
    seq_next: usize,
    rounds: BTreeMap<usize, RoundAcc>,
    /// Highest round sequence whose stats are fully folded in.
    finalized: Option<usize>,
    /// Highest round sequence whose terminal outputs arrived.
    outputs_seq: Option<usize>,
    /// Per-instance reports collected from `Finish` rounds.
    operator_rows: Vec<(usize, usize, OperatorReport)>,
    /// Latest cumulative counters per instance (keyed `(node, instance)` so
    /// iteration yields the serial runtime's row order), refreshed by the
    /// `Live` messages every processed round emits.
    live_counters: BTreeMap<(usize, usize), OperatorCounters>,
}

impl ConcurrentRuntime {
    fn launch(plan: LaunchPlan) -> Self {
        let LaunchPlan {
            nodes,
            edges,
            topo_order,
            entries,
            single_cut,
            terminal,
            capacity,
            edge_waits,
        } = plan;
        let n = nodes.len();
        let total_instances: usize = nodes.iter().map(|node| node.instances.len()).sum();

        // Bounded per-instance channels: the back-pressure boundary.
        let mut txs: Vec<Vec<SyncSender<InstanceMsg>>> = Vec::with_capacity(n);
        let mut rxs: Vec<Vec<Receiver<InstanceMsg>>> = Vec::with_capacity(n);
        for node in &nodes {
            let (mut node_txs, mut node_rxs) = (Vec::new(), Vec::new());
            for _ in 0..node.instances.len() {
                let (tx, rx) = sync_channel(capacity);
                node_txs.push(tx);
                node_rxs.push(rx);
            }
            txs.push(node_txs);
            rxs.push(node_rxs);
        }

        // Canonical in-edge numbering: sort each destination's incoming edges
        // by the source's topological position (then insertion order) — the
        // same order the serial wave loop ingests rounds in.
        let mut topo_pos = vec![0usize; n];
        for (pos, &idx) in topo_order.iter().enumerate() {
            topo_pos[idx] = pos;
        }
        let mut incoming: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
        for (src, node_edges) in edges.iter().enumerate() {
            for (local, edge) in node_edges.iter().enumerate() {
                incoming[edge.dst].push((topo_pos[src], src, local));
            }
        }
        let mut in_edge_index: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let mut in_count = vec![0usize; n];
        for (dst, mut sources) in incoming.into_iter().enumerate() {
            sources.sort_unstable();
            in_count[dst] = sources.len();
            for (slot, (_, src, local)) in sources.into_iter().enumerate() {
                in_edge_index.insert((src, local), slot);
            }
        }

        let (collector_tx, collector_rx) = channel();
        let panic_slot: PanicSlot = Arc::new(Mutex::new(None));
        let entry_txs: Vec<SyncSender<InstanceMsg>> =
            entries.iter().map(|&e| txs[e][0].clone()).collect();
        let entry_waits: Vec<Arc<AtomicU64>> =
            edge_waits[..entries.len()].iter().map(Arc::clone).collect();

        // Routers: one per node, consuming the edge specs (global edge order
        // = flatten by source then insertion, matching the edge rows after
        // the per-entry input rows).
        let mut edge_cursor = entries.len();
        let mut routers: Vec<Option<OutRouter>> = Vec::with_capacity(n);
        for (src, node_edges) in edges.into_iter().enumerate() {
            let mut out_edges = Vec::with_capacity(node_edges.len());
            for (local, edge) in node_edges.into_iter().enumerate() {
                out_edges.push(OutEdge {
                    route: edge.route,
                    dst_in_edge: in_edge_index[&(src, local)],
                    dst_txs: txs[edge.dst].clone(),
                    full_waits: Arc::clone(&edge_waits[edge_cursor]),
                });
                edge_cursor += 1;
            }
            routers.push(Some(OutRouter {
                edges: out_edges,
                terminal_tx: (src == terminal).then(|| collector_tx.clone()),
            }));
        }

        let mut workers = Vec::with_capacity(total_instances + n);
        for (idx, node) in nodes.into_iter().enumerate() {
            let parallel = node.instances.len() > 1;
            let router = routers[idx].take().expect("router built per node");
            // Parallel operators interpose a merger that restores the round's
            // canonical output order before routing onward.
            let (merger_tx, mut router) = if parallel {
                let slots = node.instances.len();
                let (tx, rx) = sync_channel(capacity.max(1) * slots);
                workers.push(spawn_worker(
                    format!("morph-topo-{}-merge", node.name),
                    Arc::clone(&panic_slot),
                    collector_tx.clone(),
                    {
                        let merge = Arc::clone(&node.merge);
                        move || {
                            MergerWorker {
                                rx,
                                instances: slots,
                                merge,
                                out: router,
                            }
                            .run()
                        }
                    },
                ));
                (Some(tx), None)
            } else {
                (None, Some(router))
            };
            let instance_rxs = std::mem::take(&mut rxs[idx]);
            for (i, (inst, rx)) in node.instances.into_iter().zip(instance_rxs).enumerate() {
                let label = if parallel {
                    format!("{}#{i}", node.name)
                } else {
                    node.name.clone()
                };
                let out = match &merger_tx {
                    Some(tx) => WorkerOut::Merger(tx.clone()),
                    None => WorkerOut::Router(router.take().expect("single instance router")),
                };
                let is_entry = entries.contains(&idx);
                let worker = InstanceWorker {
                    node: idx,
                    instance: i,
                    label: label.clone(),
                    is_entry,
                    entry_cuts: single_cut && is_entry,
                    in_edge_count: in_count[idx],
                    rx,
                    inst,
                    out,
                    collector: collector_tx.clone(),
                };
                workers.push(spawn_worker(
                    format!("morph-topo-{label}"),
                    Arc::clone(&panic_slot),
                    collector_tx.clone(),
                    move || worker.run(),
                ));
            }
        }
        // Drop the builder's collector sender so "all workers gone" surfaces
        // as a disconnect on the caller side.
        drop(collector_tx);

        Self {
            entry_txs,
            entry_waits,
            collector_rx: Some(collector_rx),
            workers,
            panic_slot,
            total_instances,
            seq_next: 0,
            rounds: BTreeMap::new(),
            finalized: None,
            outputs_seq: None,
            operator_rows: Vec::new(),
            live_counters: BTreeMap::new(),
        }
    }

    /// Close the channels and join every worker. Safe to call repeatedly;
    /// also the drop path, so a topology dropped mid-stream winds down
    /// without deadlock (receivers disconnect, blocked senders error out).
    fn shutdown(&mut self) {
        self.entry_txs.clear();
        self.collector_rx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ConcurrentRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// The assembled topology
// ---------------------------------------------------------------------------

/// A DAG of transactional operators that is itself a [`TxnEngine`]: events
/// pushed into the topology enter the entry operator, every completed batch's
/// outputs are routed downstream with the punctuation, and the terminal
/// operator's outputs become the topology's outputs. Built by
/// [`TopologyBuilder`]; see the [module documentation](self) for the
/// lifecycle, the two runtimes, and a complete example.
pub struct Topology<In, Out> {
    names: Vec<String>,
    entry_indices: Vec<usize>,
    /// Per-entry dispatch routes (parallel to `entry_indices`) in multi-entry
    /// mode; `None` in the single-entry form, where staged events are handed
    /// to the entry directly.
    dispatch: Option<Vec<ErasedRoute>>,
    terminal_index: usize,
    /// The entry operator's punctuation interval (the smallest across
    /// entries in dispatch mode), captured at build time.
    entry_punctuation: usize,
    /// Typed staging buffer for entry events: pushed events accumulate here
    /// (no per-event boxing or virtual dispatch) and are handed to the entry
    /// operator(s) one punctuation interval at a time.
    entry_buffer: Vec<In>,
    shared: SessionShared<Out>,
    serial: Option<SerialRuntime>,
    concurrent: Option<ConcurrentRuntime>,
    _marker: PhantomData<fn(In) -> Out>,
}

impl<In, Out> std::fmt::Debug for Topology<In, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: Vec<&str> = self
            .entry_indices
            .iter()
            .map(|&e| self.names[e].as_str())
            .collect();
        f.debug_struct("Topology")
            .field("operators", &self.names)
            .field("entries", &entries)
            .field("terminal", &self.names[self.terminal_index])
            .field("concurrent", &self.concurrent.is_some())
            .field("waves", &self.shared.waves)
            .finish()
    }
}

impl<In, Out> Topology<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    /// Number of operators in the dataflow (instances of one parallel
    /// operator count once).
    pub fn operator_count(&self) -> usize {
        self.names.len()
    }

    /// Operator names in the order they were added to the builder.
    pub fn operator_names(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    /// Whether the topology runs the concurrent (threaded) runtime.
    pub fn is_concurrent(&self) -> bool {
        self.concurrent.is_some()
    }

    /// Live per-operator counters and per-edge wait totals of the current
    /// session, for observers that cannot wait for `finish` (e.g. a metrics
    /// scrape). Under the serial runtime the operator rows read the instance
    /// counters directly, with the same labels [`TxnEngine::finish`] reports.
    /// Under the concurrent runtime the rows come from the per-round `Live`
    /// messages the worker threads feed through the collector channel, so
    /// they trail the stream by at most the rounds still in flight and catch
    /// up at every flush.
    pub fn live_rows(&self) -> (Vec<OperatorCounters>, Vec<EdgeReport>) {
        let mut operators = Vec::new();
        if let Some(rt) = self.serial.as_ref() {
            for node in &rt.nodes {
                node.live_counters(&mut operators);
            }
        } else if let Some(rt) = self.concurrent.as_ref() {
            operators.extend(rt.live_counters.values().cloned());
        }
        (operators, self.shared.edge_report())
    }

    // ---- serial runtime -------------------------------------------------

    /// One propagation wave: walk the operators in topological order,
    /// ingesting routed rounds, flushing where a punctuation must propagate,
    /// and routing drained outputs further downstream. With `flush_all` the
    /// wave is a synchronisation point — every operator (the entry included)
    /// drains its buffer and pipeline stages.
    fn serial_wave(&mut self, flush_all: bool) {
        let Some(rt) = self.serial.as_mut() else {
            return;
        };
        let shared = &mut self.shared;
        let wave_started = Instant::now();
        for i in 0..rt.topo_order.len() {
            let idx = rt.topo_order[i];
            let rounds = std::mem::take(&mut rt.pending[idx]);
            let routed_in = !rounds.is_empty();
            for round in rounds {
                rt.nodes[idx].ingest_round(round);
            }
            // Punctuation propagation: a downstream operator is flushed on
            // every upstream batch boundary, so its batches align with (or
            // subdivide, when its own punctuation interval is smaller) the
            // batches of its upstream. In dispatch mode entries are fed
            // through `pending` like everyone else and flush per round.
            let cuts_own = rt.single_cut && idx == rt.entries[0];
            if flush_all || (!cuts_own && routed_in) {
                rt.nodes[idx].flush_instances();
            }
            if cuts_own {
                // Any entry batches drained by this wave's flush are now
                // propagated; keep the ingest-path boundary detector in sync.
                rt.entry_batches_seen = rt.nodes[idx].instances[0].completed_batches();
            }
            let Some(outputs) = rt.nodes[idx].take_wave_outputs() else {
                continue;
            };
            if idx == rt.terminal {
                let outputs = outputs
                    .downcast::<Vec<Out>>()
                    .expect("terminal output type checked by OperatorHandle");
                shared.deliver_outputs(*outputs);
            } else {
                for edge in &rt.edges[idx] {
                    let parts = (edge.route)(outputs.as_ref(), rt.nodes[edge.dst].instances.len());
                    rt.pending[edge.dst].push(parts);
                }
            }
        }

        // Fold the wave into the report as one BatchSummary: the delta of
        // the aggregated operator counters since the previous wave. A wave
        // that moved nothing records nothing, so a trailing flush/finish
        // never appends an empty batch.
        let now = rt.aggregate_stats();
        let delta = now.totals.delta(&rt.last_stats.totals);
        let events = now.entry_events - rt.last_stats.entry_events;
        if events == 0 && delta.is_zero() {
            return;
        }
        // End-to-end latency of the wave. Single-entry ingest-triggered waves
        // start *after* the entry batch executed, so the entry batch's own
        // cut-to-post latency is added; in a flush wave (and in dispatch
        // mode, where entries execute inside the wave) it must not be
        // counted twice.
        let entry_last = rt.nodes[rt.entries[0]].instances[0].last_batch();
        let entry_elapsed = if flush_all || !rt.single_cut {
            Duration::ZERO
        } else {
            entry_last.map(|(elapsed, _)| elapsed).unwrap_or_default()
        };
        let summary = BatchSummary {
            batch: shared.waves,
            events,
            committed: delta.committed,
            aborted: delta.aborted,
            elapsed: entry_elapsed + wave_started.elapsed(),
            decision: entry_last.map(|(_, decision)| decision).unwrap_or_default(),
            redone_ops: delta.redone_ops,
            bytes_retained: shared.bytes_retained(),
            timings: delta.timings,
        };
        rt.last_stats = now;
        shared.record_round(summary, &delta.breakdown);
    }

    /// Hand the staged entry events to the entry operator(s) and propagate
    /// punctuations through the dataflow. In single-entry mode the entry
    /// engine cuts its own batches and a wave runs only when a new batch
    /// completed; in dispatch mode every feed is one round — each entry's
    /// route selects its share of the staged slice and the wave flushes the
    /// entries alongside the rest of the dataflow.
    fn serial_feed(&mut self) {
        if self.entry_buffer.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.entry_buffer);
        let trigger = match self.dispatch.as_ref() {
            Some(routes) => {
                let staged: Box<dyn Any + Send> = Box::new(events);
                let rt = self.serial.as_mut().expect("serial runtime");
                for (&idx, route) in self.entry_indices.iter().zip(routes) {
                    let parts = route(staged.as_ref(), rt.nodes[idx].instances.len());
                    rt.pending[idx].push(parts);
                }
                true
            }
            None => {
                let total = events.len();
                let rt = self.serial.as_mut().expect("serial runtime");
                let entry = rt.entries[0];
                rt.nodes[entry].ingest_round(RoutedParts {
                    parts: vec![Box::new(events)],
                    positions: vec![Vec::new()],
                    total,
                });
                let completed = rt.nodes[entry].instances[0].completed_batches();
                let new_batch = completed > rt.entry_batches_seen;
                if new_batch {
                    rt.entry_batches_seen = completed;
                }
                new_batch
            }
        };
        if trigger {
            self.serial_wave(false);
        }
    }

    // ---- concurrent runtime ---------------------------------------------

    /// Tear the runtime down and re-raise a worker panic with its original
    /// payload (same discipline as pipelined construction), or report the
    /// unexpected shutdown.
    fn concurrent_fail(&mut self) -> ! {
        let payload = self.concurrent.as_mut().and_then(|rt| {
            // Join the workers *first*: a panicking worker's channels drop
            // while it unwinds, so siblings (and this thread) can observe the
            // disconnect before the payload lands in the slot — after the
            // join, the slot is authoritative.
            rt.shutdown();
            rt.panic_slot.lock().expect("panic slot poisoned").take()
        });
        match payload {
            Some(payload) => std::panic::resume_unwind(payload),
            None => panic!("topology worker threads terminated unexpectedly"),
        }
    }

    /// Fold one collector message into the session.
    fn concurrent_apply(
        shared: &mut SessionShared<Out>,
        rt: &mut ConcurrentRuntime,
        msg: ToTopology,
    ) {
        match msg {
            ToTopology::Outputs { seq, outputs } => {
                let outputs = outputs
                    .downcast::<Vec<Out>>()
                    .expect("terminal output type checked by OperatorHandle");
                shared.deliver_outputs(*outputs);
                rt.outputs_seq = Some(seq);
            }
            ToTopology::RoundStats {
                seq,
                is_entry,
                delta,
                decision,
            } => {
                let acc = rt
                    .rounds
                    .get_mut(&seq)
                    .expect("round stats for an unknown round");
                acc.received += 1;
                if is_entry {
                    acc.entry_events += delta.events;
                    acc.decision = acc.decision.or(decision);
                }
                acc.totals.merge(&delta);
                // Rounds complete in order: finalize every leading round all
                // instances have reported.
                while let Some(entry) = rt.rounds.first_entry() {
                    if entry.get().received < rt.total_instances {
                        break;
                    }
                    let (seq, acc) = entry.remove_entry();
                    rt.finalized = Some(seq);
                    if acc.entry_events == 0 && acc.totals.is_zero() {
                        continue;
                    }
                    let summary = BatchSummary {
                        batch: shared.waves,
                        events: acc.entry_events,
                        committed: acc.totals.committed,
                        aborted: acc.totals.aborted,
                        elapsed: acc.started.elapsed(),
                        decision: acc.decision.unwrap_or_default(),
                        redone_ops: acc.totals.redone_ops,
                        bytes_retained: shared.bytes_retained(),
                        timings: acc.totals.timings,
                    };
                    shared.record_round(summary, &acc.totals.breakdown);
                }
            }
            ToTopology::Live {
                node,
                instance,
                counters,
            } => {
                rt.live_counters.insert((node, instance), counters);
            }
            ToTopology::Operator {
                node,
                instance,
                report,
            } => {
                rt.operator_rows.push((node, instance, report));
            }
            ToTopology::WorkerPanicked => {
                // Handled by the caller (needs `&mut self` to tear down);
                // flag through the panic slot which is already set.
            }
        }
    }

    /// Drain collector messages without blocking.
    fn concurrent_drain(&mut self) {
        loop {
            let received = {
                let rt = self.concurrent.as_ref().expect("concurrent runtime");
                rt.collector_rx
                    .as_ref()
                    .expect("collector open while running")
                    .try_recv()
            };
            match received {
                Ok(ToTopology::WorkerPanicked) => self.concurrent_fail(),
                Ok(msg) => {
                    let rt = self.concurrent.as_mut().expect("concurrent runtime");
                    Self::concurrent_apply(&mut self.shared, rt, msg);
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => self.concurrent_fail(),
            }
        }
    }

    /// Ship the staged entry events as one round; returns its sequence
    /// number. Blocks (back-pressure) when an entry channel is full. In
    /// dispatch mode every entry receives one aligned part of the round
    /// (possibly empty), keeping the per-round instance accounting and the
    /// downstream punctuation alignment intact.
    fn concurrent_feed(&mut self, kind: RoundKind) -> usize {
        self.concurrent_drain();
        let events = std::mem::take(&mut self.entry_buffer);
        let total = events.len();
        let (seq, delivered) = {
            let dispatch = self.dispatch.as_ref();
            let rt = self.concurrent.as_mut().expect("concurrent runtime");
            let seq = rt.seq_next;
            rt.seq_next += 1;
            rt.rounds.insert(seq, RoundAcc::new(Instant::now()));
            let delivered = match dispatch {
                Some(routes) => {
                    let staged: Box<dyn Any + Send> = Box::new(events);
                    let mut ok = true;
                    for ((tx, waits), route) in rt.entry_txs.iter().zip(&rt.entry_waits).zip(routes)
                    {
                        // Entries are single-instance, so the route yields
                        // exactly one identity part.
                        let mut parts = route(staged.as_ref(), 1);
                        let msg = InstanceMsg {
                            seq,
                            kind,
                            in_edge: 0,
                            events: parts.parts.pop().expect("identity part"),
                            positions: parts.positions.pop().unwrap_or_default(),
                            total: parts.total,
                        };
                        if !send_counting(tx, msg, waits) {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
                None => {
                    let msg = InstanceMsg {
                        seq,
                        kind,
                        in_edge: 0,
                        events: Box::new(events),
                        positions: Vec::new(),
                        total,
                    };
                    let tx = rt.entry_txs.first().expect("entry channel open");
                    send_counting(tx, msg, &rt.entry_waits[0])
                }
            };
            (seq, delivered)
        };
        if !delivered {
            self.concurrent_fail();
        }
        seq
    }

    /// Block until round `seq` is fully recorded and its terminal outputs
    /// arrived; with `reports` also until every instance reported its
    /// [`OperatorReport`] (finish path).
    fn concurrent_wait(&mut self, seq: usize, reports: bool) {
        loop {
            {
                let rt = self.concurrent.as_ref().expect("concurrent runtime");
                let rounds_done = rt.finalized >= Some(seq) && rt.outputs_seq >= Some(seq);
                let reports_done = !reports || rt.operator_rows.len() == rt.total_instances;
                if rounds_done && reports_done {
                    return;
                }
            }
            let received = {
                let rt = self.concurrent.as_ref().expect("concurrent runtime");
                rt.collector_rx
                    .as_ref()
                    .expect("collector open while running")
                    .recv()
            };
            match received {
                Ok(ToTopology::WorkerPanicked) | Err(_) => self.concurrent_fail(),
                Ok(msg) => {
                    let rt = self.concurrent.as_mut().expect("concurrent runtime");
                    Self::concurrent_apply(&mut self.shared, rt, msg);
                }
            }
        }
    }

    fn feed_entry(&mut self) {
        if self.concurrent.is_some() {
            if !self.entry_buffer.is_empty() {
                self.concurrent_feed(RoundKind::Normal);
            }
        } else {
            self.serial_feed();
        }
    }
}

impl<In, Out> TxnEngine for Topology<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    type Event = In;
    type Output = Out;

    fn ingest(&mut self, event: In) {
        self.shared.run_started.get_or_insert_with(Instant::now);
        // The hot path is a typed buffer push; the staged events are handed
        // to the entry operator one punctuation interval at a time, so the
        // entry engine cuts exactly the batches it would have cut from
        // per-event pushes — without a per-event box or virtual dispatch.
        self.entry_buffer.push(event);
        if self.entry_buffer.len() >= self.entry_punctuation {
            self.feed_entry();
        }
    }

    fn flush(&mut self) {
        if self.concurrent.is_some() {
            let seq = self.concurrent_feed(RoundKind::Flush);
            self.concurrent_wait(seq, false);
        } else {
            self.serial_feed();
            self.serial_wave(true);
        }
    }

    fn finish(&mut self) -> RunReport<Out> {
        TxnEngine::flush(self);
        let operators = if self.concurrent.is_some() {
            let seq = self.concurrent_feed(RoundKind::Finish);
            self.concurrent_wait(seq, true);
            let rt = self.concurrent.as_mut().expect("concurrent runtime");
            rt.operator_rows
                .sort_by_key(|(node, instance, _)| (*node, *instance));
            rt.rounds.clear();
            rt.live_counters.clear();
            rt.operator_rows
                .drain(..)
                .map(|(_, _, report)| report)
                .collect()
        } else {
            let rt = self.serial.as_mut().expect("serial runtime");
            rt.entry_batches_seen = 0;
            rt.last_stats = AggregateStats::default();
            rt.nodes
                .iter_mut()
                .flat_map(SerialNode::finish_instances)
                .collect()
        };
        let mut report = std::mem::take(&mut self.shared.report);
        report.operators = operators;
        report.edges = self.shared.edge_report();
        if let Some(sink) = self.shared.sink.as_mut() {
            sink.flush();
        }
        self.shared.reset_session();
        report
    }

    fn checkpoint(&mut self, sink: &mut dyn crate::pipeline::CheckpointSink) {
        // Flush is the checkpoint barrier for both runtimes: the serial wave
        // loop drains every operator inline, and the concurrent path blocks
        // until the Flush round completed on every worker thread — so each
        // store is quiescent while the sink walks it.
        TxnEngine::flush(self);
        for (ordinal, store) in self.shared.stores.iter().enumerate() {
            sink.store(ordinal, store, store.take_dirty_tables());
        }
    }

    fn restore(&mut self, source: &mut dyn crate::pipeline::CheckpointSource) {
        for (ordinal, store) in self.shared.stores.iter().enumerate() {
            source.restore(ordinal, store);
        }
    }

    fn report(&self) -> &RunReport<Out> {
        // Under the concurrent runtime the report trails the stream until the
        // next flush/finish synchronisation point (rounds complete on worker
        // threads); the serial wave loop keeps it current per punctuation.
        &self.shared.report
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.shared.hook = hook;
    }

    fn set_output_sink(&mut self, sink: Option<crate::pipeline::OutputSink<Out>>) {
        self.shared.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_common::{TableId, Value};
    use morphstream_tpg::udfs;

    /// Doubles the incoming value into a per-key table; output carries the
    /// key and whether the transaction committed.
    struct Doubler {
        table: TableId,
    }

    impl StreamApp for Doubler {
        type Event = u64;
        type Output = (u64, bool);

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, *key, udfs::add_delta(2));
        }

        fn post_process(&self, key: &u64, outcome: &crate::TxnOutcome) -> (u64, bool) {
            (*key, outcome.committed)
        }
    }

    /// Sums routed keys into one accumulator cell per key class.
    struct Summer {
        table: TableId,
    }

    impl StreamApp for Summer {
        type Event = u64;
        type Output = u64;

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, 0, udfs::add_delta(*key as Value));
        }

        fn post_process(&self, key: &u64, _outcome: &crate::TxnOutcome) -> u64 {
            *key
        }
    }

    /// Counts per-key updates (used by keyed-parallelism tests: every key is
    /// owned by exactly one instance).
    struct KeyCounter {
        table: TableId,
    }

    impl StreamApp for KeyCounter {
        type Event = u64;
        type Output = u64;

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, *key, udfs::add_delta(1));
        }

        fn post_process(&self, key: &u64, _outcome: &crate::TxnOutcome) -> u64 {
            *key
        }
    }

    fn two_op_topology(
        punctuation: usize,
        topo: TopologyConfig,
    ) -> (Topology<u64, u64>, StateStore, TableId, TableId) {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(2).with_punctuation_interval(punctuation);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        builder.connect(
            a,
            b,
            Route::filter_map(|(key, committed): &(u64, bool)| committed.then_some(*key)),
        );
        let topology = builder.build(a, b, topo).unwrap();
        (topology, store, doubled, sums)
    }

    #[test]
    fn events_flow_through_both_operators_and_reports_aggregate() {
        let (mut topology, store, doubled, sums) = two_op_topology(4, TopologyConfig::default());
        assert_eq!(topology.operator_count(), 2);
        assert_eq!(topology.operator_names(), vec!["doubler", "summer"]);
        assert!(!topology.is_concurrent());

        let report = topology.run(1..=10u64);
        // terminal outputs: every committed key, in order
        assert_eq!(report.outputs, (1..=10u64).collect::<Vec<_>>());
        // both operators processed all ten events
        assert_eq!(report.operators.len(), 2);
        assert_eq!(report.operators[0].name, "doubler");
        assert_eq!(report.operators[0].events, 10);
        assert_eq!(report.operators[1].events, 10);
        // per-operator counts sum to the topology totals
        let committed: usize = report.operators.iter().map(|op| op.committed).sum();
        let aborted: usize = report.operators.iter().map(|op| op.aborted).sum();
        assert_eq!(report.committed, committed);
        assert_eq!(report.aborted, aborted);
        // 10 entry events reported once (not once per operator)
        assert_eq!(report.events(), 10);
        // edge observability rows: the input feed plus the one routed edge
        assert_eq!(report.edges.len(), 2);
        assert_eq!(report.edges[0].from, "(input)");
        assert_eq!(report.edges[1].to, "summer");
        assert!(report.edges.iter().all(|e| e.queue_full_waits == 0));
        // state reflects both stages
        assert_eq!(store.read_latest(doubled, 3).unwrap(), 2);
        assert_eq!(store.read_latest(sums, 0).unwrap(), 55);
    }

    #[test]
    fn concurrent_runtime_matches_the_serial_wave_loop() {
        let (mut serial, serial_store, _, _) = two_op_topology(4, TopologyConfig::default());
        let expected = serial.run(1..=64u64);

        let concurrent_config = TopologyConfig::default()
            .with_concurrent(true)
            .with_channel_capacity(2);
        let (mut concurrent, store, _, _) = two_op_topology(4, concurrent_config);
        assert!(concurrent.is_concurrent());
        let report = concurrent.run(1..=64u64);

        assert_eq!(report.outputs, expected.outputs);
        assert_eq!(report.committed, expected.committed);
        assert_eq!(report.aborted, expected.aborted);
        assert_eq!(store.state_digest(), serial_store.state_digest());
        assert_eq!(report.operators.len(), 2);
        let committed: usize = report.operators.iter().map(|op| op.committed).sum();
        assert_eq!(report.committed, committed);

        // sessions stay reusable on the same worker threads
        let second = concurrent.run(1..=8u64);
        assert_eq!(second.events(), 8);
        assert_eq!(second.outputs, (1..=8u64).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_parallelism_is_deterministic_across_instance_counts() {
        let run = |parallelism: usize, concurrent: bool| -> (u64, Vec<u64>, usize) {
            let store = StateStore::new();
            let doubled = store.create_table("doubled", 0, true);
            let counts = store.create_table("counts", 0, true);
            let config = EngineConfig::with_threads(2).with_punctuation_interval(8);
            let mut builder = TopologyBuilder::new();
            let a =
                builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
            let b = builder
                .add_operator(
                    "counter",
                    KeyCounter { table: counts },
                    store.clone(),
                    config,
                )
                .with_parallelism(parallelism);
            builder.connect(
                a,
                b,
                Route::keyed(
                    |key: &u64| *key,
                    |(key, committed): &(u64, bool)| committed.then_some(*key),
                ),
            );
            let mut topology = builder
                .build(a, b, TopologyConfig::default().with_concurrent(concurrent))
                .unwrap();
            let events: Vec<u64> = (0..96u64).map(|i| i % 13).collect();
            let report = topology.run(events);
            (store.state_digest(), report.outputs, report.operators.len())
        };

        let (digest1, outputs1, rows1) = run(1, false);
        assert_eq!(rows1, 2);
        for parallelism in [2, 4] {
            for concurrent in [false, true] {
                let (digest, outputs, rows) = run(parallelism, concurrent);
                assert_eq!(
                    digest, digest1,
                    "digest diverged at parallelism={parallelism} concurrent={concurrent}"
                );
                // outputs come back merged into the original event order
                assert_eq!(outputs, outputs1);
                // per-instance rows: doubler + counter#0..#n
                assert_eq!(rows, 1 + parallelism);
            }
        }
    }

    #[test]
    fn parallel_instance_rows_are_named_and_sum_to_totals() {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let counts = store.create_table("counts", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(4);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder
            .add_operator(
                "counter",
                KeyCounter { table: counts },
                store.clone(),
                config,
            )
            .with_parallelism(2);
        builder.connect(
            a,
            b,
            Route::keyed(|key: &u64| *key, |(key, _): &(u64, bool)| Some(*key)),
        );
        let mut topology = builder.build(a, b, TopologyConfig::default()).unwrap();
        let report = topology.run(0..16u64);
        let names: Vec<&str> = report.operators.iter().map(|op| op.name.as_str()).collect();
        assert_eq!(names, vec!["doubler", "counter#0", "counter#1"]);
        let committed: usize = report.operators.iter().map(|op| op.committed).sum();
        assert_eq!(report.committed, committed);
        // both instances saw work (16 distinct keys across 2 partitions)
        assert!(report.operators[1].events > 0);
        assert!(report.operators[2].events > 0);
        assert_eq!(report.operators[1].events + report.operators[2].events, 16);
    }

    #[test]
    fn punctuation_propagates_on_every_batch_boundary() {
        let (mut topology, _store, _doubled, _sums) = two_op_topology(4, TopologyConfig::default());
        let mut pipeline = topology.pipeline();
        pipeline.push_iter(1..=8u64);
        // two full entry batches have propagated end-to-end without a flush
        assert_eq!(pipeline.report().events(), 8);
        assert_eq!(pipeline.report().batches.len(), 2);
        assert_eq!(pipeline.report().outputs.len(), 8);
        let report = pipeline.finish();
        assert_eq!(report.batches.len(), 2); // no empty trailing batch
    }

    #[test]
    fn batch_hook_fires_once_per_wave_and_sessions_are_reusable() {
        use std::sync::atomic::AtomicUsize;

        let (mut topology, _store, _doubled, _sums) = two_op_topology(4, TopologyConfig::default());
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        let mut pipeline = topology.pipeline().on_batch(move |batch| {
            assert!(batch.events <= 4);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        pipeline.push_iter(1..=10u64); // 2 full waves + 1 partial on finish
        let report = pipeline.finish();
        assert_eq!(report.batches.len(), 3);
        assert_eq!(fired.load(Ordering::Relaxed), 3);

        // the topology is reusable: a fresh session starts empty
        let second = topology.run(1..=4u64);
        assert_eq!(second.events(), 4);
        assert_eq!(second.batches.first().map(|b| b.batch), Some(0));
        assert_eq!(second.operators.len(), 2);
    }

    #[test]
    fn fan_out_routes_one_output_to_multiple_downstream_events() {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(2);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        // every committed key fans out into two downstream events
        builder.connect(
            a,
            b,
            Route::fan_out(|(key, committed): &(u64, bool)| {
                if *committed {
                    vec![*key, *key]
                } else {
                    Vec::new()
                }
            }),
        );
        let mut topology = builder.build(a, b, TopologyConfig::default()).unwrap();
        let report = topology.run([1u64, 2, 3]);
        assert_eq!(report.outputs, vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(store.read_latest(sums, 0).unwrap(), 12);
        assert_eq!(report.operators[1].events, 6);
    }

    #[test]
    fn route_map_and_is_keyed() {
        let mapped: Route<(u64, bool), u64> = Route::map(|(key, _): &(u64, bool)| *key);
        assert!(!mapped.is_keyed());
        let keyed: Route<(u64, bool), u64> =
            Route::keyed(|key: &u64| *key, |(key, _): &(u64, bool)| Some(*key));
        assert!(keyed.is_keyed());

        // Route::map forwards every output 1:1
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(4);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        builder.connect(a, b, Route::map(|(key, _): &(u64, bool)| *key));
        let mut topology = builder.build(a, b, TopologyConfig::default()).unwrap();
        let report = topology.run([5u64, 6, 7]);
        assert_eq!(report.outputs, vec![5, 6, 7]);
    }

    #[test]
    fn single_operator_topology_degenerates_to_the_engine() {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(4);
        let mut builder = TopologyBuilder::new();
        let only =
            builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let mut topology = builder
            .build(only, only, TopologyConfig::default())
            .unwrap();
        let report = topology.run(0..6u64);
        assert_eq!(report.outputs.len(), 6);
        assert_eq!(report.operators.len(), 1);
        assert_eq!(report.committed, report.operators[0].committed);
        assert_eq!(store.read_latest(doubled, 5).unwrap(), 2);
    }

    #[test]
    fn build_rejects_cycles_unreachable_operators_and_bad_endpoints() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let pass = || Route::map(|key: &u64| *key);

        // cycle downstream of the entry: a -> b -> c -> b, c -> d
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        let c = builder.add_operator("c", Summer { table: t }, store.clone(), config);
        let d = builder.add_operator("d", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        builder.connect(b, c, pass());
        builder.connect(c, b, pass());
        builder.connect(c, d, pass());
        assert_eq!(
            builder.build(a, d, TopologyConfig::default()).unwrap_err(),
            TopologyError::Cycle
        );

        // unreachable: c is never connected
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        let _c = builder.add_operator("stranded", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        assert_eq!(
            builder.build(a, b, TopologyConfig::default()).unwrap_err(),
            TopologyError::Unreachable("stranded".into())
        );

        // entry with an upstream edge
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        assert_eq!(
            builder.build(b, b, TopologyConfig::default()).unwrap_err(),
            TopologyError::EntryHasUpstream("b".into())
        );

        // terminal with a downstream edge
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        assert_eq!(
            builder.build(a, a, TopologyConfig::default()).unwrap_err(),
            TopologyError::TerminalHasDownstream("a".into())
        );
        // errors render as readable messages
        assert!(TopologyError::Cycle.to_string().contains("cycle"));
    }

    #[test]
    fn build_rejects_a_second_entry_with_a_directed_error() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let pass = || Route::map(|key: &u64| *key);

        // two source-like operators both feed the terminal: the second feed
        // must be reported as a multi-entry attempt, not as "unreachable"
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let second =
            builder.add_operator("second-feed", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        builder.connect(second, b, pass());
        let err = builder.build(a, b, TopologyConfig::default()).unwrap_err();
        assert_eq!(
            err,
            TopologyError::MultiEntry {
                entry: "a".into(),
                extra: "second-feed".into(),
            }
        );
        // the message tells the user how to fix it
        assert!(err.to_string().contains("merge_by_timestamp"));
    }

    #[test]
    fn build_rejects_parallel_entry_unkeyed_parallel_routes_and_bad_configs() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);

        // a parallel entry has no routed key to partition by
        let mut builder = TopologyBuilder::new();
        let a = builder
            .add_operator("a", Summer { table: t }, store.clone(), config)
            .with_parallelism(2);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, Route::map(|key: &u64| *key));
        assert_eq!(
            builder.build(a, b, TopologyConfig::default()).unwrap_err(),
            TopologyError::ParallelEntry("a".into())
        );

        // an unkeyed route into a parallel operator cannot partition
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder
            .add_operator("b", Summer { table: t }, store.clone(), config)
            .with_parallelism(3);
        builder.connect(a, b, Route::map(|key: &u64| *key));
        assert_eq!(
            builder.build(a, b, TopologyConfig::default()).unwrap_err(),
            TopologyError::UnkeyedParallelRoute {
                from: "a".into(),
                to: "b".into(),
            }
        );
        assert!(TopologyError::UnkeyedParallelRoute {
            from: "a".into(),
            to: "b".into()
        }
        .to_string()
        .contains("Route::keyed"));

        // a zero channel capacity is rejected before any thread spawns
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store, config);
        builder.connect(a, b, Route::map(|key: &u64| *key));
        assert!(matches!(
            builder
                .build(a, b, TopologyConfig::default().with_channel_capacity(0))
                .unwrap_err(),
            TopologyError::InvalidConfig(_)
        ));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handles_are_rejected() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let mut first = TopologyBuilder::new();
        let foreign = first.add_operator("a", Summer { table: t }, store.clone(), config);
        let mut second = TopologyBuilder::new();
        let local = second.add_operator("b", Summer { table: t }, store, config);
        second.connect(foreign, local, Route::map(|key: &u64| *key));
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn zero_parallelism_is_rejected() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let mut builder = TopologyBuilder::new();
        let _ = builder
            .add_operator("a", Summer { table: t }, store, config)
            .with_parallelism(0);
    }

    /// Multi-entry test fixture: a tagged event stream dispatched to two
    /// entry operators that both feed one terminal Summer.
    ///
    /// Events are `(feed, key)`; feed 0 goes to a Doubler, feed 1 to a
    /// KeyCounter, and both route their keys into the Summer.
    fn two_entry_topology(
        punctuation: usize,
        topo: TopologyConfig,
    ) -> (Topology<(u8, u64), u64>, StateStore) {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let counts = store.create_table("counts", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(2).with_punctuation_interval(punctuation);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("left", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("right", KeyCounter { table: counts }, store.clone(), config);
        let c = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        builder.connect(
            a,
            c,
            Route::filter_map(|(key, committed): &(u64, bool)| committed.then_some(*key)),
        );
        builder.connect(b, c, Route::map(|key: &u64| *key));
        let topology = builder
            .build_with_entries(
                vec![
                    EntryBinding::new(
                        a,
                        Route::filter_map(|(feed, key): &(u8, u64)| (*feed == 0).then_some(*key)),
                    ),
                    EntryBinding::new(
                        b,
                        Route::filter_map(|(feed, key): &(u8, u64)| (*feed == 1).then_some(*key)),
                    ),
                ],
                c,
                topo,
            )
            .unwrap();
        (topology, store)
    }

    /// A deterministic merged two-feed stream: feed tag alternates in a
    /// fixed (timestamp-ordered) pattern.
    fn merged_two_feed_stream(count: u64) -> Vec<(u8, u64)> {
        (0..count).map(|i| ((i % 3 == 0) as u8, i % 17)).collect()
    }

    #[test]
    fn multi_entry_topology_runs_and_reports_entry_events_once() {
        let (mut topology, store) = two_entry_topology(8, TopologyConfig::default());
        assert_eq!(topology.operator_count(), 3);
        let events = merged_two_feed_stream(64);
        let report = topology.run(events.clone());
        // every input event lands on exactly one entry
        assert_eq!(report.events(), 64);
        // terminal saw the union of both entries' outputs
        assert_eq!(report.operators.len(), 3);
        let summer = report
            .operators
            .iter()
            .find(|op| op.name == "summer")
            .unwrap();
        assert_eq!(summer.events, 64);
        // edge rows: two input feeds plus two routed edges
        assert_eq!(report.edges.len(), 4);
        assert_eq!(report.edges[0].from, "(input)");
        assert_eq!(report.edges[1].from, "(input)");
        assert_eq!(report.edges[0].to, "left");
        assert_eq!(report.edges[1].to, "right");
        assert!(store.state_digest() != 0);
    }

    #[test]
    fn multi_entry_serial_and_concurrent_agree() {
        let events = merged_two_feed_stream(96);
        let (mut serial, serial_store) = two_entry_topology(8, TopologyConfig::default());
        let expected = serial.run(events.clone());

        for capacity in [1, 4] {
            let (mut concurrent, store) = two_entry_topology(
                8,
                TopologyConfig::default()
                    .with_concurrent(true)
                    .with_channel_capacity(capacity),
            );
            let report = concurrent.run(events.clone());
            assert_eq!(report.outputs, expected.outputs);
            assert_eq!(report.events(), expected.events());
            assert_eq!(report.committed, expected.committed);
            assert_eq!(
                store.state_digest(),
                serial_store.state_digest(),
                "digest diverged at capacity={capacity}"
            );
        }
    }

    #[test]
    fn multi_entry_digest_is_independent_of_feed_interleaving() {
        // The same per-feed event sequences, merged in two different
        // arrival interleavings that preserve each feed's internal order;
        // dispatch happens on the merged stream one round at a time, so
        // rounds must be identical — enforce the round boundary by choosing
        // interleavings that agree per punctuation window.
        let a = merged_two_feed_stream(64);
        let mut b = a.clone();
        for chunk in b.chunks_mut(8) {
            chunk.sort_by_key(|(feed, _)| *feed);
        }
        let run = |events: Vec<(u8, u64)>| {
            let (mut topology, store) = two_entry_topology(8, TopologyConfig::default());
            let report = topology.run(events);
            (store.state_digest(), report.events())
        };
        let (da, ea) = run(a);
        let (db, eb) = run(b);
        assert_eq!(ea, eb);
        assert_eq!(
            da, db,
            "within-round arrival order must not affect the digest"
        );
    }

    #[test]
    fn multi_entry_sessions_are_reusable() {
        let (mut topology, _store) = two_entry_topology(4, TopologyConfig::default());
        let first = topology.run(merged_two_feed_stream(16));
        assert_eq!(first.events(), 16);
        let second = topology.run(merged_two_feed_stream(8));
        assert_eq!(second.events(), 8);
    }

    #[test]
    fn build_with_entries_rejects_duplicates_and_undeclared_feeds() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let pass = || Route::map(|key: &u64| *key);
        let dispatch = || Route::map(|key: &u64| *key);

        // duplicate entry binding
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        let err = builder
            .build_with_entries(
                vec![
                    EntryBinding::new(a, dispatch()),
                    EntryBinding::new(a, dispatch()),
                ],
                b,
                TopologyConfig::default(),
            )
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateEntry("a".into()));

        // a feeding source not listed as an entry is still a MultiEntry error
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let second = builder.add_operator("rogue", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, pass());
        builder.connect(second, b, pass());
        let err = builder
            .build_with_entries(
                vec![EntryBinding::new(a, dispatch())],
                b,
                TopologyConfig::default(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::MultiEntry {
                entry: "a".into(),
                extra: "rogue".into(),
            }
        );
        assert!(err.to_string().contains("build_with_entries"));
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for key in 0..1_000u64 {
            let p = partition_of(key, 4);
            assert!(p < 4);
            assert_eq!(p, partition_of(key, 4));
        }
        // all partitions of a small modulus get hit
        let hit: std::collections::HashSet<usize> =
            (0..64u64).map(|k| partition_of(k, 4)).collect();
        assert_eq!(hit.len(), 4);
    }
}
