//! First-class operator topologies: chain transactional operators into a
//! dataflow that is itself a [`TxnEngine`].
//!
//! The paper's programming model covers one transactional operator per
//! engine, but real TSPE applications — S-Store's dataflows of transactional
//! stored procedures, multi-stage fraud detection, enrichment → scoring →
//! settlement chains — are *graphs* of such operators. A [`Topology`] wires
//! several [`StreamApp`]s into a DAG: each operator runs its own MorphStream
//! engine (its own TPG, decision model, and scheduling), every upstream
//! operator's `Output` is routed (map / filter / fan-out) into downstream
//! operators' `Event`s, and punctuations propagate downstream on every batch
//! boundary, so a batch cut by the entry operator flows through the whole
//! dataflow before the next one starts executing downstream.
//!
//! The assembled `Topology` implements [`TxnEngine`], so
//! [`Pipeline`](crate::Pipeline) sessions, the bench harness's generic drive
//! loop, and trait-driven oracle tests work on a whole dataflow unchanged.
//! Its [`RunReport`] aggregates every operator — per-operator sub-reports are
//! attached as [`OperatorReport`]s when the session finishes, and their
//! commit/abort counts sum to the top-level totals.
//!
//! ```
//! use morphstream::storage::StateStore;
//! use morphstream::{
//!     udfs, EngineConfig, StreamApp, TopologyBuilder, TxnBuilder, TxnEngine, TxnOutcome,
//! };
//! use morphstream_common::TableId;
//!
//! /// Counts word occurrences; emits the word with its committed flag.
//! struct WordCount {
//!     words: TableId,
//! }
//!
//! impl StreamApp for WordCount {
//!     type Event = u64;
//!     type Output = (u64, bool);
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.words, *word, udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, word: &u64, outcome: &TxnOutcome) -> (u64, bool) {
//!         (*word, outcome.committed)
//!     }
//! }
//!
//! /// Tallies how many distinct updates each parity class received.
//! struct ParityTally {
//!     parities: TableId,
//! }
//!
//! impl StreamApp for ParityTally {
//!     type Event = u64;
//!     type Output = bool;
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.parities, *word % 2, udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, _word: &u64, outcome: &TxnOutcome) -> bool {
//!         outcome.committed
//!     }
//! }
//!
//! let store = StateStore::new();
//! let words = store.create_table("words", 0, true);
//! let parities = store.create_table("parities", 0, true);
//! let config = EngineConfig::with_threads(2).with_punctuation_interval(4);
//!
//! // counter --(committed words only)--> tally
//! let mut builder = TopologyBuilder::new();
//! let counter = builder.add_operator("word-count", WordCount { words }, store.clone(), config);
//! let tally = builder.add_operator("parity-tally", ParityTally { parities }, store.clone(), config);
//! builder.connect(counter, tally, |(word, committed)| committed.then_some(*word));
//! let mut topology = builder.build(counter, tally).unwrap();
//!
//! // The topology is an engine: drive it through the ordinary Pipeline API.
//! let mut pipeline = topology.pipeline();
//! pipeline.push_iter([1u64, 2, 3, 4, 5, 6, 7, 8]);
//! let report = pipeline.finish();
//!
//! assert_eq!(report.outputs.len(), 8);
//! assert_eq!(report.operators.len(), 2);
//! // per-operator counts sum to the top-level totals
//! let summed: usize = report.operators.iter().map(|op| op.committed).sum();
//! assert_eq!(report.committed, summed);
//! assert_eq!(store.read_latest(parities, 0).unwrap(), 4); // 2, 4, 6, 8
//! ```

use std::any::Any;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morphstream_common::metrics::{Breakdown, StageTimings};
use morphstream_common::EngineConfig;
use morphstream_scheduler::SchedulingDecision;
use morphstream_storage::StateStore;

use crate::app::{StreamApp, TxnBuilder};
use crate::engine::MorphStream;
use crate::pipeline::{BatchHook, TxnEngine};
use crate::report::{BatchSummary, OperatorReport, RunReport};

/// Distinguishes handles of different builders, so a handle can never index
/// into a topology it was not created for.
static NEXT_BUILDER_ID: AtomicU64 = AtomicU64::new(0);

/// Typed reference to an operator added to a [`TopologyBuilder`]: carries the
/// operator's event/output types so [`TopologyBuilder::connect`] and
/// [`TopologyBuilder::build`] are checked at compile time.
pub struct OperatorHandle<E, O> {
    builder: u64,
    index: usize,
    _marker: PhantomData<fn(E) -> O>,
}

impl<E, O> Clone for OperatorHandle<E, O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E, O> Copy for OperatorHandle<E, O> {}

impl<E, O> std::fmt::Debug for OperatorHandle<E, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorHandle")
            .field("index", &self.index)
            .finish()
    }
}

/// Why a [`TopologyBuilder::build`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The operator graph contains a cycle; punctuation propagation requires
    /// a DAG.
    Cycle,
    /// The named operator cannot receive events: it is not reachable from the
    /// entry operator.
    Unreachable(String),
    /// The entry operator has an incoming edge; entry events arrive only from
    /// the outside.
    EntryHasUpstream(String),
    /// The terminal operator has an outgoing edge; its outputs are the
    /// topology's outputs.
    TerminalHasDownstream(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Cycle => write!(f, "operator topology contains a cycle"),
            TopologyError::Unreachable(name) => {
                write!(
                    f,
                    "operator {name:?} is not reachable from the entry operator"
                )
            }
            TopologyError::EntryHasUpstream(name) => {
                write!(f, "entry operator {name:?} has an incoming edge")
            }
            TopologyError::TerminalHasDownstream(name) => {
                write!(f, "terminal operator {name:?} has an outgoing edge")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Wraps a user application so its outputs are *tapped* into a queue the
/// topology drains after every batch, instead of accumulating inside the
/// operator's own `RunReport`. Outputs move — no `Clone` bound on routed
/// output types — and the operator's report keeps every metric except the
/// output values themselves.
struct TapApp<A: StreamApp> {
    inner: A,
    queue: Arc<Mutex<Vec<A::Output>>>,
}

impl<A: StreamApp> StreamApp for TapApp<A>
where
    A::Output: 'static,
{
    type Event = A::Event;
    type Output = ();

    fn state_access(&self, event: &A::Event, txn: &mut TxnBuilder) {
        self.inner.state_access(event, txn);
    }

    fn post_process(&self, event: &A::Event, outcome: &crate::TxnOutcome) {
        let output = self.inner.post_process(event, outcome);
        self.queue
            .lock()
            .expect("output queue poisoned")
            .push(output);
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.inner.expected_abort_ratio()
    }
}

/// Cumulative counters aggregated over operators, used to turn two snapshots
/// into one propagation wave's [`BatchSummary`].
#[derive(Default, Clone)]
struct AggregateStats {
    /// Events ingested by the *entry* operator (the topology's input count).
    entry_events: usize,
    committed: usize,
    aborted: usize,
    redone_ops: usize,
    timings: StageTimings,
    breakdown: Breakdown,
}

/// Object-safe view of one operator node: a typed `MorphStream<TapApp<A>>`
/// behind event/output erasure, so a heterogeneous DAG fits in one `Vec`.
trait ErasedNode: Send {
    fn name(&self) -> &str;
    /// Ingest a batch of events (a boxed `Vec<A::Event>`).
    fn ingest_batch(&mut self, events: Box<dyn Any>);
    /// The engine's punctuation interval in events (`usize::MAX` when unset:
    /// one batch per flush).
    fn punctuation_interval(&self) -> usize;
    fn flush(&mut self);
    /// Batches this operator's engine has completed in the current session —
    /// a lock-free signal that new outputs are queued (outputs are tapped
    /// during batch execution, before the batch is recorded).
    fn completed_batches(&self) -> usize;
    /// Drain the tapped outputs as a boxed `Vec<A::Output>`; `None` when
    /// nothing is queued.
    fn take_outputs(&mut self) -> Option<Box<dyn Any>>;
    /// Turn off after-batch reclamation (shared-store topologies; see
    /// [`TopologyBuilder::build`]).
    fn disable_reclamation(&mut self);
    /// Cumulative session counters of this operator's engine.
    fn stats(&self) -> (usize, usize, usize, usize, StageTimings, Breakdown);
    fn last_batch(&self) -> Option<(Duration, SchedulingDecision)>;
    fn store(&self) -> &StateStore;
    /// Close the operator's session and condense it into a sub-report.
    fn finish_operator(&mut self) -> OperatorReport;
}

struct Node<A: StreamApp>
where
    A::Output: 'static,
{
    name: String,
    engine: MorphStream<TapApp<A>>,
    queue: Arc<Mutex<Vec<A::Output>>>,
    store: StateStore,
}

impl<A: StreamApp> ErasedNode for Node<A>
where
    A::Output: 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn punctuation_interval(&self) -> usize {
        self.engine
            .config()
            .punctuation_interval
            .unwrap_or(usize::MAX)
            .max(1)
    }

    fn ingest_batch(&mut self, events: Box<dyn Any>) {
        let events = events
            .downcast::<Vec<A::Event>>()
            .expect("routed event type checked by OperatorHandle");
        for event in *events {
            self.engine.ingest(event);
        }
    }

    fn flush(&mut self) {
        self.engine.flush();
    }

    fn completed_batches(&self) -> usize {
        self.engine.report().batches.len()
    }

    fn disable_reclamation(&mut self) {
        self.engine.disable_reclamation();
    }

    fn take_outputs(&mut self) -> Option<Box<dyn Any>> {
        let mut queue = self.queue.lock().expect("output queue poisoned");
        if queue.is_empty() {
            return None;
        }
        Some(Box::new(std::mem::take(&mut *queue)))
    }

    fn stats(&self) -> (usize, usize, usize, usize, StageTimings, Breakdown) {
        let report = self.engine.report();
        (
            report.events(),
            report.committed,
            report.aborted,
            report.redone_ops,
            report.stage_timings,
            report.breakdown.clone(),
        )
    }

    fn last_batch(&self) -> Option<(Duration, SchedulingDecision)> {
        self.engine
            .report()
            .batches
            .last()
            .map(|b| (b.elapsed, b.decision))
    }

    fn store(&self) -> &StateStore {
        &self.store
    }

    fn finish_operator(&mut self) -> OperatorReport {
        let run = self.engine.finish();
        self.queue.lock().expect("output queue poisoned").clear();
        OperatorReport::from_run(&self.name, &run)
    }
}

/// Erased route function: maps a drained output batch (`&Vec<O>`) to the
/// destination's event batch (`Box<Vec<E2>>`).
type RouteFn = Box<dyn Fn(&dyn Any) -> Box<dyn Any> + Send>;

/// One routed connection between two operators.
struct Edge {
    dst: usize,
    route: RouteFn,
}

/// Builds a [`Topology`]: add operators, connect them with route functions,
/// then [`TopologyBuilder::build`] the dataflow with a designated entry and
/// terminal operator.
pub struct TopologyBuilder {
    id: u64,
    nodes: Vec<Box<dyn ErasedNode>>,
    edges: Vec<Vec<Edge>>,
}

impl Default for TopologyBuilder {
    // Must go through `new()`: a derived default would use builder id 0,
    // colliding with the first allocated id and defeating the foreign-handle
    // check.
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            id: NEXT_BUILDER_ID.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a transactional operator: `app` runs as its own MorphStream engine
    /// over `store` with `config` (its own punctuation interval, TPG,
    /// decision model, and worker pool). Returns the typed handle used to
    /// [`connect`](TopologyBuilder::connect) it into the dataflow.
    ///
    /// Operators may share a `StateStore` (and must, when downstream
    /// operators read state written upstream), but two operators must never
    /// write the *same table* — each operator assigns its own timestamps, and
    /// interleaving two timestamp domains in one table's version chains would
    /// un-order them. [`TopologyBuilder::build`] disables after-batch version
    /// reclamation on operators whose store is shared, because store-wide
    /// truncation with one operator's watermark could collapse versions a
    /// sibling operator's windowed reads still need.
    #[must_use]
    pub fn add_operator<A: StreamApp>(
        &mut self,
        name: impl Into<String>,
        app: A,
        store: StateStore,
        config: EngineConfig,
    ) -> OperatorHandle<A::Event, A::Output>
    where
        A::Output: 'static,
    {
        let queue = Arc::new(Mutex::new(Vec::new()));
        let tapped = TapApp {
            inner: app,
            queue: Arc::clone(&queue),
        };
        let index = self.nodes.len();
        self.nodes.push(Box::new(Node {
            name: name.into(),
            engine: MorphStream::new(tapped, store.clone(), config),
            queue,
            store,
        }));
        self.edges.push(Vec::new());
        OperatorHandle {
            builder: self.id,
            index,
            _marker: PhantomData,
        }
    }

    /// Route `from`'s outputs into `to`'s events: after every batch `from`
    /// completes, `route` is applied to each output in order and every event
    /// it yields is ingested by `to` (then `to` is flushed, propagating the
    /// punctuation). Return `Some`/`None` to map/filter, or a `Vec` to fan
    /// one output out into several events; add several edges from one
    /// operator to fan out across downstream operators.
    ///
    /// # Panics
    ///
    /// Panics if either handle does not belong to this builder.
    pub fn connect<E1, O1, E2, O2, R, I>(
        &mut self,
        from: OperatorHandle<E1, O1>,
        to: OperatorHandle<E2, O2>,
        route: R,
    ) where
        O1: 'static,
        E2: 'static,
        R: Fn(&O1) -> I + Send + 'static,
        I: IntoIterator<Item = E2>,
    {
        self.check_handle(from.builder, from.index);
        self.check_handle(to.builder, to.index);
        let erased = move |outputs: &dyn Any| -> Box<dyn Any> {
            let outputs = outputs
                .downcast_ref::<Vec<O1>>()
                .expect("edge source type checked by OperatorHandle");
            let mut routed: Vec<E2> = Vec::new();
            for output in outputs {
                routed.extend(route(output));
            }
            Box::new(routed) as Box<dyn Any>
        };
        self.edges[from.index].push(Edge {
            dst: to.index,
            route: Box::new(erased),
        });
    }

    fn check_handle(&self, builder: u64, index: usize) {
        assert!(
            builder == self.id && index < self.nodes.len(),
            "operator handle does not belong to this TopologyBuilder"
        );
    }

    /// Assemble the dataflow: `entry` receives the topology's input events,
    /// `terminal`'s outputs become the topology's outputs (operators that are
    /// neither the terminal nor connected further act as side-effecting
    /// sinks; their outputs are discarded). Validates that the graph is a
    /// DAG, that every operator is reachable from `entry`, that `entry` has
    /// no upstream, and that `terminal` has no downstream.
    ///
    /// # Panics
    ///
    /// Panics if either handle does not belong to this builder.
    pub fn build<In, EO, TE, Out>(
        self,
        entry: OperatorHandle<In, EO>,
        terminal: OperatorHandle<TE, Out>,
    ) -> Result<Topology<In, Out>, TopologyError>
    where
        In: Send + 'static,
        Out: Send + 'static,
    {
        self.check_handle(entry.builder, entry.index);
        self.check_handle(terminal.builder, terminal.index);
        let n = self.nodes.len();

        let mut in_degree = vec![0usize; n];
        for edges in &self.edges {
            for edge in edges {
                in_degree[edge.dst] += 1;
            }
        }
        if in_degree[entry.index] != 0 {
            return Err(TopologyError::EntryHasUpstream(
                self.nodes[entry.index].name().to_string(),
            ));
        }
        if !self.edges[terminal.index].is_empty() {
            return Err(TopologyError::TerminalHasDownstream(
                self.nodes[terminal.index].name().to_string(),
            ));
        }

        // Kahn's algorithm: the propagation order. A leftover node means a
        // cycle; an unreached node (in-degree never zero *via the entry*) is
        // caught by the reachability check below.
        let mut degree = in_degree.clone();
        let mut ready: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(idx) = ready.pop() {
            topo_order.push(idx);
            for edge in &self.edges[idx] {
                degree[edge.dst] -= 1;
                if degree[edge.dst] == 0 {
                    ready.push(edge.dst);
                }
            }
        }
        if topo_order.len() != n {
            return Err(TopologyError::Cycle);
        }

        let mut reachable = vec![false; n];
        reachable[entry.index] = true;
        let mut frontier = vec![entry.index];
        while let Some(idx) = frontier.pop() {
            for edge in &self.edges[idx] {
                if !reachable[edge.dst] {
                    reachable[edge.dst] = true;
                    frontier.push(edge.dst);
                }
            }
        }
        if let Some(stranded) = (0..n).find(|&i| !reachable[i]) {
            return Err(TopologyError::Unreachable(
                self.nodes[stranded].name().to_string(),
            ));
        }

        // Deduplicate shared stores so per-wave memory accounting counts each
        // underlying store once.
        let mut stores: Vec<StateStore> = Vec::new();
        for node in &self.nodes {
            let store = node.store();
            if !stores
                .iter()
                .any(|s| s.instance_id() == store.instance_id())
            {
                stores.push(store.clone());
            }
        }

        // After-batch reclamation truncates the *whole* store with the
        // reclaiming operator's watermark. Operators stamp independent
        // timestamp domains, so on a shared store one operator's reclamation
        // could collapse versions a sibling's windowed reads still need —
        // turn it off for every operator whose store is shared. (Scoped
        // per-table reclamation is a roadmap follow-up.)
        let mut nodes = self.nodes;
        if stores.len() < n {
            let ids: Vec<usize> = nodes
                .iter()
                .map(|node| node.store().instance_id())
                .collect();
            for (idx, node) in nodes.iter_mut().enumerate() {
                let shared = ids
                    .iter()
                    .enumerate()
                    .any(|(other, id)| other != idx && *id == ids[idx]);
                if shared {
                    node.disable_reclamation();
                }
            }
        }

        let pending = (0..n).map(|_| Vec::new()).collect();
        let entry_punctuation = nodes[entry.index].punctuation_interval();
        Ok(Topology {
            nodes,
            edges: self.edges,
            pending,
            topo_order,
            entry: entry.index,
            terminal: terminal.index,
            stores,
            report: RunReport::new(),
            hook: None,
            waves: 0,
            run_started: None,
            entry_buffer: Vec::new(),
            entry_punctuation,
            entry_batches_seen: 0,
            last_stats: AggregateStats::default(),
            _marker: PhantomData,
        })
    }
}

/// A DAG of transactional operators that is itself a [`TxnEngine`]: events
/// pushed into the topology enter the entry operator, every completed batch's
/// outputs are routed downstream with the punctuation, and the terminal
/// operator's outputs become the topology's outputs. Built by
/// [`TopologyBuilder`]; see the [module documentation](self) for the
/// lifecycle and a complete example.
pub struct Topology<In, Out> {
    nodes: Vec<Box<dyn ErasedNode>>,
    edges: Vec<Vec<Edge>>,
    /// Routed-but-not-yet-ingested event batches per destination operator.
    pending: Vec<Vec<Box<dyn Any>>>,
    topo_order: Vec<usize>,
    entry: usize,
    terminal: usize,
    /// The distinct state stores of the operators (shared stores counted
    /// once), for per-wave memory accounting.
    stores: Vec<StateStore>,
    report: RunReport<Out>,
    hook: Option<BatchHook>,
    waves: usize,
    run_started: Option<Instant>,
    /// Typed staging buffer for entry events: pushed events accumulate here
    /// (no per-event boxing or virtual dispatch) and are handed to the entry
    /// operator one punctuation interval at a time.
    entry_buffer: Vec<In>,
    /// The entry operator's punctuation interval, captured at build time.
    entry_punctuation: usize,
    /// Entry-operator batches already propagated, so ingestion detects new
    /// batch boundaries without locking the output queue per event.
    entry_batches_seen: usize,
    last_stats: AggregateStats,
    _marker: PhantomData<fn(In) -> Out>,
}

impl<In, Out> std::fmt::Debug for Topology<In, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field(
                "operators",
                &self.nodes.iter().map(|n| n.name()).collect::<Vec<_>>(),
            )
            .field("entry", &self.nodes[self.entry].name())
            .field("terminal", &self.nodes[self.terminal].name())
            .field("waves", &self.waves)
            .finish()
    }
}

impl<In, Out> Topology<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    /// Number of operators in the dataflow.
    pub fn operator_count(&self) -> usize {
        self.nodes.len()
    }

    /// Operator names in the order they were added to the builder.
    pub fn operator_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name()).collect()
    }

    /// One propagation wave: walk the operators in topological order,
    /// ingesting routed batches, flushing where a punctuation must propagate,
    /// and routing drained outputs further downstream. With `flush_all` the
    /// wave is a synchronisation point — every operator (the entry included)
    /// drains its buffer and pipeline stages, so all pushed events are
    /// reflected in the report afterwards.
    fn wave(&mut self, flush_all: bool) {
        let wave_started = Instant::now();
        for i in 0..self.topo_order.len() {
            let idx = self.topo_order[i];
            let routed_in = !self.pending[idx].is_empty();
            for batch in std::mem::take(&mut self.pending[idx]) {
                self.nodes[idx].ingest_batch(batch);
            }
            // Punctuation propagation: a downstream operator is flushed on
            // every upstream batch boundary, so its batches align with (or
            // subdivide, when its own punctuation interval is smaller) the
            // batches of its upstream.
            if flush_all || (idx != self.entry && routed_in) {
                self.nodes[idx].flush();
            }
            if idx == self.entry {
                // Any entry batches drained by this wave's flush are now
                // propagated; keep the ingest-path boundary detector in sync.
                self.entry_batches_seen = self.nodes[idx].completed_batches();
            }
            let Some(outputs) = self.nodes[idx].take_outputs() else {
                continue;
            };
            if idx == self.terminal {
                let outputs = outputs
                    .downcast::<Vec<Out>>()
                    .expect("terminal output type checked by OperatorHandle");
                self.report.outputs.extend(*outputs);
            } else {
                for edge in &self.edges[idx] {
                    self.pending[edge.dst].push((edge.route)(outputs.as_ref()));
                }
            }
        }
        self.record_wave(wave_started, flush_all);
    }

    /// Hand the staged entry events to the entry operator and, when that
    /// completed a batch (its tapped outputs appeared), propagate the
    /// punctuation through the dataflow. Batch counting is lock-free;
    /// outputs are queued strictly before a batch is recorded.
    fn feed_entry(&mut self) {
        if self.entry_buffer.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.entry_buffer);
        self.nodes[self.entry].ingest_batch(Box::new(events));
        let completed = self.nodes[self.entry].completed_batches();
        if completed > self.entry_batches_seen {
            self.entry_batches_seen = completed;
            self.wave(false);
        }
    }

    /// Cumulative counters summed over every operator (entry events kept
    /// separately — they are the topology's input count).
    fn aggregate_stats(&self) -> AggregateStats {
        let mut agg = AggregateStats::default();
        for (idx, node) in self.nodes.iter().enumerate() {
            let (events, committed, aborted, redone, timings, breakdown) = node.stats();
            if idx == self.entry {
                agg.entry_events = events;
            }
            agg.committed += committed;
            agg.aborted += aborted;
            agg.redone_ops += redone;
            agg.timings.merge(&timings);
            agg.breakdown.merge(&breakdown);
        }
        agg
    }

    /// Fold one propagation wave into the topology-level report as a
    /// [`BatchSummary`]: the delta of the aggregated operator counters since
    /// the previous wave. A wave that moved nothing records nothing, so a
    /// trailing `flush`/`finish` never appends an empty batch.
    fn record_wave(&mut self, wave_started: Instant, flush_all: bool) {
        let now = self.aggregate_stats();
        let last = &self.last_stats;
        let events = now.entry_events - last.entry_events;
        let committed = now.committed - last.committed;
        let aborted = now.aborted - last.aborted;
        if events == 0 && committed == 0 && aborted == 0 {
            return;
        }
        // End-to-end latency of the wave. Ingest-triggered waves start
        // *after* the entry batch executed, so the entry batch's own
        // cut-to-post latency is added; in a flush wave the entry batch
        // executes inside the wave interval and must not be counted twice.
        let entry_elapsed = if flush_all {
            Duration::ZERO
        } else {
            self.nodes[self.entry]
                .last_batch()
                .map(|(elapsed, _)| elapsed)
                .unwrap_or_default()
        };
        let decision = self.nodes[self.entry]
            .last_batch()
            .map(|(_, decision)| decision)
            .unwrap_or_default();
        let summary = BatchSummary {
            batch: self.waves,
            events,
            committed,
            aborted,
            elapsed: entry_elapsed + wave_started.elapsed(),
            decision,
            redone_ops: now.redone_ops - last.redone_ops,
            bytes_retained: self.stores.iter().map(StateStore::bytes_retained).sum(),
            timings: now.timings.saturating_sub(&last.timings),
        };
        let breakdown = now.breakdown.saturating_sub(&last.breakdown);
        if let Some(hook) = self.hook.as_mut() {
            hook(&summary);
        }
        let at = self.run_started.map(|s| s.elapsed()).unwrap_or_default();
        self.report.record_batch(summary, &breakdown, at);
        self.waves += 1;
        self.last_stats = now;
    }
}

impl<In, Out> TxnEngine for Topology<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    type Event = In;
    type Output = Out;

    fn ingest(&mut self, event: In) {
        self.run_started.get_or_insert_with(Instant::now);
        // The hot path is a typed buffer push; the staged events are handed
        // to the entry operator one punctuation interval at a time, so the
        // entry engine cuts exactly the batches it would have cut from
        // per-event pushes — without a per-event box or virtual dispatch.
        self.entry_buffer.push(event);
        if self.entry_buffer.len() >= self.entry_punctuation {
            self.feed_entry();
        }
    }

    fn flush(&mut self) {
        self.feed_entry();
        self.wave(true);
    }

    fn finish(&mut self) -> RunReport<Out> {
        TxnEngine::flush(self);
        let mut report = std::mem::take(&mut self.report);
        report.operators = self
            .nodes
            .iter_mut()
            .map(|node| node.finish_operator())
            .collect();
        self.waves = 0;
        self.run_started = None;
        self.hook = None;
        self.entry_batches_seen = 0;
        self.last_stats = AggregateStats::default();
        report
    }

    fn report(&self) -> &RunReport<Out> {
        &self.report
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.hook = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_common::{TableId, Value};
    use morphstream_tpg::udfs;

    /// Doubles the incoming value into a per-key table; output carries the
    /// key and whether the transaction committed.
    struct Doubler {
        table: TableId,
    }

    impl StreamApp for Doubler {
        type Event = u64;
        type Output = (u64, bool);

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, *key, udfs::add_delta(2));
        }

        fn post_process(&self, key: &u64, outcome: &crate::TxnOutcome) -> (u64, bool) {
            (*key, outcome.committed)
        }
    }

    /// Sums routed keys into one accumulator cell.
    struct Summer {
        table: TableId,
    }

    impl StreamApp for Summer {
        type Event = u64;
        type Output = u64;

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, 0, udfs::add_delta(*key as Value));
        }

        fn post_process(&self, key: &u64, _outcome: &crate::TxnOutcome) -> u64 {
            *key
        }
    }

    fn two_op_topology(punctuation: usize) -> (Topology<u64, u64>, StateStore, TableId, TableId) {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(2).with_punctuation_interval(punctuation);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        builder.connect(a, b, |(key, committed)| committed.then_some(*key));
        let topology = builder.build(a, b).unwrap();
        (topology, store, doubled, sums)
    }

    #[test]
    fn events_flow_through_both_operators_and_reports_aggregate() {
        let (mut topology, store, doubled, sums) = two_op_topology(4);
        assert_eq!(topology.operator_count(), 2);
        assert_eq!(topology.operator_names(), vec!["doubler", "summer"]);

        let report = topology.run(1..=10u64);
        // terminal outputs: every committed key, in order
        assert_eq!(report.outputs, (1..=10u64).collect::<Vec<_>>());
        // both operators processed all ten events
        assert_eq!(report.operators.len(), 2);
        assert_eq!(report.operators[0].name, "doubler");
        assert_eq!(report.operators[0].events, 10);
        assert_eq!(report.operators[1].events, 10);
        // per-operator counts sum to the topology totals
        let committed: usize = report.operators.iter().map(|op| op.committed).sum();
        let aborted: usize = report.operators.iter().map(|op| op.aborted).sum();
        assert_eq!(report.committed, committed);
        assert_eq!(report.aborted, aborted);
        // 10 entry events reported once (not once per operator)
        assert_eq!(report.events(), 10);
        // state reflects both stages
        assert_eq!(store.read_latest(doubled, 3).unwrap(), 2);
        assert_eq!(store.read_latest(sums, 0).unwrap(), 55);
    }

    #[test]
    fn punctuation_propagates_on_every_batch_boundary() {
        let (mut topology, _store, _doubled, _sums) = two_op_topology(4);
        let mut pipeline = topology.pipeline();
        pipeline.push_iter(1..=8u64);
        // two full entry batches have propagated end-to-end without a flush
        assert_eq!(pipeline.report().events(), 8);
        assert_eq!(pipeline.report().batches.len(), 2);
        assert_eq!(pipeline.report().outputs.len(), 8);
        let report = pipeline.finish();
        assert_eq!(report.batches.len(), 2); // no empty trailing batch
    }

    #[test]
    fn batch_hook_fires_once_per_wave_and_sessions_are_reusable() {
        use std::sync::atomic::AtomicUsize;

        let (mut topology, _store, _doubled, _sums) = two_op_topology(4);
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        let mut pipeline = topology.pipeline().on_batch(move |batch| {
            assert!(batch.events <= 4);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        pipeline.push_iter(1..=10u64); // 2 full waves + 1 partial on finish
        let report = pipeline.finish();
        assert_eq!(report.batches.len(), 3);
        assert_eq!(fired.load(Ordering::Relaxed), 3);

        // the topology is reusable: a fresh session starts empty
        let second = topology.run(1..=4u64);
        assert_eq!(second.events(), 4);
        assert_eq!(second.batches.first().map(|b| b.batch), Some(0));
        assert_eq!(second.operators.len(), 2);
    }

    #[test]
    fn fan_out_routes_one_output_to_multiple_downstream_events() {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let sums = store.create_table("sums", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(2);
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let b = builder.add_operator("summer", Summer { table: sums }, store.clone(), config);
        // every committed key fans out into two downstream events
        builder.connect(a, b, |(key, committed): &(u64, bool)| {
            if *committed {
                vec![*key, *key]
            } else {
                Vec::new()
            }
        });
        let mut topology = builder.build(a, b).unwrap();
        let report = topology.run([1u64, 2, 3]);
        assert_eq!(report.outputs, vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(store.read_latest(sums, 0).unwrap(), 12);
        assert_eq!(report.operators[1].events, 6);
    }

    #[test]
    fn single_operator_topology_degenerates_to_the_engine() {
        let store = StateStore::new();
        let doubled = store.create_table("doubled", 0, true);
        let config = EngineConfig::with_threads(1).with_punctuation_interval(4);
        let mut builder = TopologyBuilder::new();
        let only =
            builder.add_operator("doubler", Doubler { table: doubled }, store.clone(), config);
        let mut topology = builder.build(only, only).unwrap();
        let report = topology.run(0..6u64);
        assert_eq!(report.outputs.len(), 6);
        assert_eq!(report.operators.len(), 1);
        assert_eq!(report.committed, report.operators[0].committed);
        assert_eq!(store.read_latest(doubled, 5).unwrap(), 2);
    }

    #[test]
    fn build_rejects_cycles_unreachable_operators_and_bad_endpoints() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);

        // cycle downstream of the entry: a -> b -> c -> b, c -> d
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        let c = builder.add_operator("c", Summer { table: t }, store.clone(), config);
        let d = builder.add_operator("d", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, |k: &u64| Some(*k));
        builder.connect(b, c, |k: &u64| Some(*k));
        builder.connect(c, b, |k: &u64| Some(*k));
        builder.connect(c, d, |k: &u64| Some(*k));
        assert_eq!(builder.build(a, d).unwrap_err(), TopologyError::Cycle);

        // unreachable: c is never connected
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        let _c = builder.add_operator("stranded", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, |k: &u64| Some(*k));
        assert_eq!(
            builder.build(a, b).unwrap_err(),
            TopologyError::Unreachable("stranded".into())
        );

        // entry with an upstream edge
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, |k: &u64| Some(*k));
        assert_eq!(
            builder.build(b, b).unwrap_err(),
            TopologyError::EntryHasUpstream("b".into())
        );

        // terminal with a downstream edge
        let mut builder = TopologyBuilder::new();
        let a = builder.add_operator("a", Summer { table: t }, store.clone(), config);
        let b = builder.add_operator("b", Summer { table: t }, store.clone(), config);
        builder.connect(a, b, |k: &u64| Some(*k));
        assert_eq!(
            builder.build(a, a).unwrap_err(),
            TopologyError::TerminalHasDownstream("a".into())
        );
        // errors render as readable messages
        assert!(TopologyError::Cycle.to_string().contains("cycle"));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handles_are_rejected() {
        let config = EngineConfig::with_threads(1);
        let store = StateStore::new();
        let t = store.create_table("t", 0, true);
        let mut first = TopologyBuilder::new();
        let foreign = first.add_operator("a", Summer { table: t }, store.clone(), config);
        let mut second = TopologyBuilder::new();
        let local = second.add_operator("b", Summer { table: t }, store, config);
        second.connect(foreign, local, |k: &u64| Some(*k));
    }
}
