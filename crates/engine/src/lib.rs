//! # MorphStream
//!
//! A transactional stream processing engine (TSPE) that executes *state
//! transactions* — the shared-mutable-state accesses triggered by input
//! events — with adaptive, TPG-based scheduling on multicores. This crate is
//! the public face of the reproduction: applications implement the
//! [`StreamApp`] trait (the paper's three-step programming model of
//! pre-process / state access / post-process), feed events to a
//! [`MorphStream`] engine, and receive per-event outputs plus a rich
//! [`RunReport`] with throughput, latency, runtime breakdown, and the
//! scheduling decisions the engine morphed through.
//!
//! Ingestion is push-based: [`TxnEngine::pipeline`] opens a session whose
//! `push`/`push_iter` calls trigger punctuation-delimited batch processing
//! internally (see the [`pipeline`] module for the full lifecycle). The
//! `process(Vec<Event>)` call below is a convenience wrapper over that
//! session API for streams that are already materialised.
//!
//! ```
//! use morphstream::{MorphStream, StreamApp, TxnBuilder, EngineConfig};
//! use morphstream::storage::StateStore;
//! use morphstream_common::TableId;
//!
//! /// Counts occurrences of words in a stream.
//! struct WordCount {
//!     words: TableId,
//! }
//!
//! impl StreamApp for WordCount {
//!     type Event = u64;      // word id
//!     type Output = bool;    // committed?
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.words, *word, morphstream::udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, _word: &u64, outcome: &morphstream::TxnOutcome) -> bool {
//!         outcome.committed
//!     }
//! }
//!
//! let store = StateStore::new();
//! let words = store.create_table("words", 0, true);
//! let app = WordCount { words };
//! let mut engine = MorphStream::new(app, store.clone(), EngineConfig::with_threads(2));
//! let report = engine.process(vec![1, 2, 1, 3, 1]);
//! assert_eq!(report.committed, 5);
//! assert_eq!(store.read_latest(words, 1).unwrap(), 3);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod engine;
pub mod pipeline;
pub mod report;
pub mod topology;

pub use app::{StreamApp, TxnBuilder};
pub use engine::{MorphStream, SchedulingMode};
pub use pipeline::{
    BatchHook, CheckpointSink, CheckpointSource, EventSink, EventSource, FnSink, OutputSink,
    PendingBatch, Pipeline, SessionState, TxnEngine,
};
pub use report::{
    BatchSummary, DurabilityCounters, EdgeReport, OperatorCounters, OperatorReport, ReportSnapshot,
    RunReport,
};
pub use topology::{EntryBinding, OperatorHandle, Route, Topology, TopologyBuilder, TopologyError};

pub use morphstream_common::{AbortReason, EngineConfig, TopologyConfig, WorkloadConfig};
pub use morphstream_executor::TxnOutcome;
pub use morphstream_scheduler::{
    AbortHandling, DecisionModel, ExplorationStrategy, Granularity, SchedulingDecision,
};
pub use morphstream_tpg::udfs;
pub use morphstream_tpg::{
    KeyResolver, OperationSpec, Transaction, TransactionBatch, Udf, UdfInput, UdfOutcome,
};

/// Re-export of the storage crate for applications that create tables.
pub mod storage {
    pub use morphstream_storage::*;
}
