//! Execution results reported back to the engine.

use std::time::Duration;

use morphstream_common::metrics::Breakdown;
use morphstream_common::{AbortReason, OpId, TxnId, Value};
use morphstream_scheduler::SchedulingDecision;

/// Outcome of one state transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOutcome {
    /// Transaction id within the batch.
    pub txn: TxnId,
    /// Whether every operation of the transaction executed successfully.
    pub committed: bool,
    /// Why the transaction aborted, when it did.
    pub abort_reason: Option<AbortReason>,
    /// Result value of every operation of the transaction, in statement
    /// order: the value read (for reads / window reads) or the value written
    /// (for writes). `None` for operations that aborted before producing a
    /// result.
    pub op_results: Vec<(OpId, Option<Value>)>,
}

impl TxnOutcome {
    /// Result of the `idx`-th operation (statement) of the transaction.
    pub fn result(&self, idx: usize) -> Option<Value> {
        self.op_results.get(idx).and_then(|(_, v)| *v)
    }
}

/// Report of one executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-transaction outcomes, indexed by transaction id.
    pub outcomes: Vec<TxnOutcome>,
    /// Runtime breakdown accumulated across all worker threads.
    pub breakdown: Breakdown,
    /// The scheduling decision that was executed.
    pub decision: SchedulingDecision,
    /// Number of user-defined function evaluations, including redone ones.
    pub udf_evaluations: usize,
    /// Number of operations that had to be rolled back and redone because an
    /// upstream transaction aborted.
    pub redone_ops: usize,
    /// Wall-clock time of the executor's own work (exploration plus lazy
    /// abort resolution), as opposed to the cross-thread clock-tick sums in
    /// `breakdown`. The engine measures its execution *stage* around this
    /// call (additionally spanning scheduling, post-processing, and
    /// reclamation) for its
    /// [`StageTimings`](morphstream_common::metrics::StageTimings); this
    /// field is the executor-side lower bound of that interval, exposed for
    /// consistency checks and external consumers.
    pub execute_wall: Duration,
}

impl BatchReport {
    /// Number of committed transactions.
    pub fn committed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.committed).count()
    }

    /// Number of aborted transactions.
    pub fn aborted(&self) -> usize {
        self.outcomes.len() - self.committed()
    }

    /// Abort ratio of the batch.
    pub fn abort_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.aborted() as f64 / self.outcomes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_scheduler::SchedulingDecision;

    #[test]
    fn report_counts_commits_and_aborts() {
        let outcomes = vec![
            TxnOutcome {
                txn: 0,
                committed: true,
                abort_reason: None,
                op_results: vec![(0, Some(5))],
            },
            TxnOutcome {
                txn: 1,
                committed: false,
                abort_reason: Some(AbortReason::Injected),
                op_results: vec![(1, None)],
            },
        ];
        let report = BatchReport {
            outcomes,
            breakdown: Breakdown::new(),
            decision: SchedulingDecision::default(),
            udf_evaluations: 2,
            redone_ops: 0,
            execute_wall: Duration::ZERO,
        };
        assert_eq!(report.committed(), 1);
        assert_eq!(report.aborted(), 1);
        assert!((report.abort_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(report.outcomes[0].result(0), Some(5));
        assert_eq!(report.outcomes[1].result(0), None);
    }

    #[test]
    fn empty_report_has_zero_abort_ratio() {
        let report = BatchReport {
            outcomes: vec![],
            breakdown: Breakdown::new(),
            decision: SchedulingDecision::default(),
            udf_evaluations: 0,
            redone_ops: 0,
            execute_wall: Duration::ZERO,
        };
        assert_eq!(report.abort_ratio(), 0.0);
    }
}
