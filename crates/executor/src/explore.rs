//! Exploration drivers: how worker threads traverse the scheduling units of a
//! TPG (Section 5.1).
//!
//! All three drivers operate on the unit partition produced by the
//! granularity decision (fine = one operation per unit, coarse = operation
//! chains). The drivers differ in how ready units are discovered:
//!
//! * **structured BFS** — units are stratified by their longest dependency
//!   path; all threads process one stratum and synchronise on a barrier
//!   before moving to the next (barrier wait is accounted as `sync` time);
//! * **structured DFS** — units are statically assigned to threads; a thread
//!   spins until the dependencies of its next unit resolve (spin time is
//!   accounted as `explore` time);
//! * **non-structured** — a shared ready queue plus per-unit dependency
//!   counters; finishing a unit asynchronously enqueues its newly-ready
//!   children (queue wait is accounted as `explore` time).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use morphstream_common::metrics::{Breakdown, BreakdownBucket};
use morphstream_scheduler::ExplorationStrategy;
use morphstream_tpg::SchedulingUnits;

use crate::context::ExecContext;

/// Run every unit of the batch with `num_threads` workers following the given
/// exploration strategy, merging per-worker breakdowns into `breakdown`.
pub fn run(
    ctx: &ExecContext,
    units: &SchedulingUnits,
    strategy: ExplorationStrategy,
    num_threads: usize,
    breakdown: &mut Breakdown,
) {
    if units.num_units() == 0 {
        return;
    }
    let partials = match strategy {
        ExplorationStrategy::StructuredBfs => run_bfs(ctx, units, num_threads),
        ExplorationStrategy::StructuredDfs => run_dfs(ctx, units, num_threads),
        ExplorationStrategy::NonStructured => run_ns(ctx, units, num_threads),
    };
    for partial in partials {
        breakdown.merge(&partial);
    }
}

/// Process one unit: run its operations in timestamp order.
fn process_unit(
    ctx: &ExecContext,
    units: &SchedulingUnits,
    unit: usize,
    breakdown: &mut Breakdown,
) {
    for &op in &units.units()[unit].ops {
        ctx.run_op(op, breakdown);
    }
}

/// Longest-path rank of every unit over the unit DAG, plus the number of
/// strata.
fn unit_strata(units: &SchedulingUnits) -> (Vec<usize>, usize) {
    let n = units.num_units();
    let mut rank = vec![0usize; n];
    let mut indegree: Vec<usize> = (0..n).map(|u| units.parents(u).len()).collect();
    let mut queue: VecDeque<usize> = (0..n).filter(|&u| indegree[u] == 0).collect();
    let mut max_rank = 0;
    let mut visited = 0;
    while let Some(u) = queue.pop_front() {
        visited += 1;
        max_rank = max_rank.max(rank[u]);
        for &c in units.children(u) {
            rank[c] = rank[c].max(rank[u] + 1);
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push_back(c);
            }
        }
    }
    debug_assert_eq!(visited, n, "unit graph must be acyclic after merging");
    (rank, if n == 0 { 0 } else { max_rank + 1 })
}

// ---------------------------------------------------------------------------
// structured BFS
// ---------------------------------------------------------------------------

fn run_bfs(ctx: &ExecContext, units: &SchedulingUnits, num_threads: usize) -> Vec<Breakdown> {
    let (rank, num_strata) = unit_strata(units);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); num_strata];
    for (unit, &r) in rank.iter().enumerate() {
        strata[r].push(unit);
    }
    let barrier = Barrier::new(num_threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for worker in 0..num_threads {
            let strata = &strata;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut breakdown = Breakdown::new();
                for stratum in strata {
                    // every worker takes an interleaved slice of the stratum
                    for unit in stratum.iter().skip(worker).step_by(num_threads) {
                        process_unit(ctx, units, *unit, &mut breakdown);
                    }
                    let wait = Instant::now();
                    barrier.wait();
                    breakdown.add(BreakdownBucket::Sync, wait.elapsed());
                }
                breakdown
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("BFS worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// structured DFS
// ---------------------------------------------------------------------------

fn run_dfs(ctx: &ExecContext, units: &SchedulingUnits, num_threads: usize) -> Vec<Breakdown> {
    let (rank, _) = unit_strata(units);
    let n = units.num_units();
    // Assign units to threads round-robin in rank order so that every thread
    // processes its own units in topological order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&u| (rank[u], u));
    let assignments: Vec<Vec<usize>> = (0..num_threads)
        .map(|w| order.iter().copied().skip(w).step_by(num_threads).collect())
        .collect();

    // settled[unit] counts remaining unfinished parent units.
    let remaining: Vec<AtomicUsize> = (0..n)
        .map(|u| AtomicUsize::new(units.parents(u).len()))
        .collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for assignment in assignments.iter() {
            let remaining = &remaining;
            handles.push(scope.spawn(move || {
                let mut breakdown = Breakdown::new();
                for &unit in assignment {
                    // spin until the unit's dependencies are settled
                    let wait = Instant::now();
                    while remaining[unit].load(Ordering::Acquire) > 0 {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                    breakdown.add(BreakdownBucket::Explore, wait.elapsed());
                    process_unit(ctx, units, unit, &mut breakdown);
                    for &child in units.children(unit) {
                        remaining[child].fetch_sub(1, Ordering::AcqRel);
                    }
                }
                breakdown
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("DFS worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// non-structured
// ---------------------------------------------------------------------------

struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
    available: Condvar,
    settled: AtomicUsize,
    total: usize,
}

impl ReadyQueue {
    fn push(&self, unit: usize) {
        self.queue.lock().push_back(unit);
        self.available.notify_one();
    }

    /// Pop the next ready unit; returns `None` when every unit has settled.
    /// The wait time is added to the `explore` bucket.
    fn pop(&self, breakdown: &mut Breakdown) -> Option<usize> {
        let wait = Instant::now();
        let mut queue = self.queue.lock();
        loop {
            if let Some(unit) = queue.pop_front() {
                breakdown.add(BreakdownBucket::Explore, wait.elapsed());
                return Some(unit);
            }
            if self.settled.load(Ordering::Acquire) >= self.total {
                breakdown.add(BreakdownBucket::Explore, wait.elapsed());
                return None;
            }
            self.available
                .wait_for(&mut queue, std::time::Duration::from_millis(1));
        }
    }

    fn mark_settled(&self) {
        if self.settled.fetch_add(1, Ordering::AcqRel) + 1 >= self.total {
            self.available.notify_all();
        }
    }
}

fn run_ns(ctx: &ExecContext, units: &SchedulingUnits, num_threads: usize) -> Vec<Breakdown> {
    let n = units.num_units();
    let remaining: Vec<AtomicUsize> = (0..n)
        .map(|u| AtomicUsize::new(units.parents(u).len()))
        .collect();
    let ready = ReadyQueue {
        queue: Mutex::new((0..n).filter(|&u| units.parents(u).is_empty()).collect()),
        available: Condvar::new(),
        settled: AtomicUsize::new(0),
        total: n,
    };

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let ready = &ready;
            let remaining = &remaining;
            handles.push(scope.spawn(move || {
                let mut breakdown = Breakdown::new();
                while let Some(unit) = ready.pop(&mut breakdown) {
                    process_unit(ctx, units, unit, &mut breakdown);
                    // asynchronously notify dependents (the signal-holder of
                    // the paper's ns-explore)
                    for &child in units.children(unit) {
                        if remaining[child].fetch_sub(1, Ordering::AcqRel) == 1 {
                            ready.push(child);
                        }
                    }
                    ready.mark_settled();
                }
                breakdown
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ns-explore worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use morphstream_common::{StateRef, TableId, Value};
    use morphstream_scheduler::AbortHandling;
    use morphstream_storage::StateStore;
    use morphstream_tpg::{udfs, OperationSpec, TpgBuilder, Transaction, TransactionBatch};
    use std::sync::Arc;

    const T: TableId = TableId(0);

    fn transfer_workload(num_accounts: u64, num_txns: u64) -> TransactionBatch {
        let mut batch = TransactionBatch::new();
        for ts in 1..=num_txns {
            let from = ts % num_accounts;
            let to = (ts * 7 + 3) % num_accounts;
            if from == to {
                batch.push(Transaction::new(
                    ts,
                    vec![OperationSpec::write(T, from, vec![], udfs::add_delta(1))],
                ));
            } else {
                batch.push(Transaction::new(
                    ts,
                    vec![
                        OperationSpec::write(T, from, vec![], udfs::withdraw(10)),
                        OperationSpec::write(
                            T,
                            to,
                            vec![StateRef::new(T, from)],
                            udfs::credit_if_param_at_least(10, 10),
                        ),
                    ],
                ));
            }
        }
        batch
    }

    fn fresh_store(accounts: u64, balance: Value) -> StateStore {
        let store = StateStore::new();
        let t = store.create_table("accounts", balance, false);
        store.preallocate_range(t, accounts).unwrap();
        store
    }

    fn total_balance(store: &StateStore, accounts: u64) -> Value {
        (0..accounts)
            .map(|k| store.read_latest(T, k).unwrap())
            .sum()
    }

    fn run_with(
        strategy: ExplorationStrategy,
        coarse: bool,
        threads: usize,
    ) -> (StateStore, Value) {
        const ACCOUNTS: u64 = 32;
        const TXNS: u64 = 200;
        let store = fresh_store(ACCOUNTS, 1_000);
        let initial = total_balance(&store, ACCOUNTS);
        let tpg = Arc::new(TpgBuilder::new().build(transfer_workload(ACCOUNTS, TXNS)));
        let units = if coarse {
            morphstream_tpg::SchedulingUnits::coarse(&tpg)
        } else {
            morphstream_tpg::SchedulingUnits::fine(&tpg)
        };
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Eager);
        let mut breakdown = Breakdown::new();
        run(&ctx, &units, strategy, threads, &mut breakdown);
        (store, initial)
    }

    #[test]
    fn bfs_exploration_preserves_total_balance() {
        let (store, initial) = run_with(ExplorationStrategy::StructuredBfs, false, 4);
        assert_eq!(total_balance(&store, 32), initial);
    }

    #[test]
    fn dfs_exploration_preserves_total_balance() {
        let (store, initial) = run_with(ExplorationStrategy::StructuredDfs, false, 4);
        assert_eq!(total_balance(&store, 32), initial);
    }

    #[test]
    fn ns_exploration_preserves_total_balance() {
        let (store, initial) = run_with(ExplorationStrategy::NonStructured, false, 4);
        assert_eq!(total_balance(&store, 32), initial);
    }

    #[test]
    fn coarse_units_preserve_total_balance_across_strategies() {
        for strategy in [
            ExplorationStrategy::StructuredBfs,
            ExplorationStrategy::StructuredDfs,
            ExplorationStrategy::NonStructured,
        ] {
            let (store, initial) = run_with(strategy, true, 4);
            assert_eq!(total_balance(&store, 32), initial, "strategy {strategy}");
        }
    }

    #[test]
    fn single_threaded_execution_works_for_all_strategies() {
        for strategy in [
            ExplorationStrategy::StructuredBfs,
            ExplorationStrategy::StructuredDfs,
            ExplorationStrategy::NonStructured,
        ] {
            let (store, initial) = run_with(strategy, false, 1);
            assert_eq!(total_balance(&store, 32), initial, "strategy {strategy}");
        }
    }

    #[test]
    fn strata_ranks_respect_unit_dependencies() {
        let tpg = Arc::new(TpgBuilder::new().build(transfer_workload(8, 50)));
        let units = morphstream_tpg::SchedulingUnits::coarse(&tpg);
        let (rank, num_strata) = unit_strata(&units);
        assert!(num_strata >= 1);
        for unit in 0..units.num_units() {
            for &parent in units.parents(unit) {
                assert!(rank[parent] < rank[unit]);
            }
        }
    }

    #[test]
    fn empty_unit_partition_is_a_no_op() {
        let tpg = Arc::new(TpgBuilder::new().build(TransactionBatch::new()));
        let units = morphstream_tpg::SchedulingUnits::fine(&tpg);
        let store = fresh_store(1, 0);
        let ctx = ExecContext::new(tpg, store, AbortHandling::Eager);
        let mut breakdown = Breakdown::new();
        run(
            &ctx,
            &units,
            ExplorationStrategy::NonStructured,
            4,
            &mut breakdown,
        );
    }
}
