//! S-TPG execution — the *execution* stage of MorphStream.
//!
//! Given a planned [`Tpg`](morphstream_tpg::Tpg), a
//! [`SchedulingDecision`](morphstream_scheduler::SchedulingDecision) and the
//! multi-version [`StateStore`](morphstream_storage::StateStore), the executor
//! runs every operation of the batch on a pool of worker threads while
//! maintaining the finite-state machine of Section 6.1 (BLK → RDY → EXE /
//! ABT) for every vertex. Aborted transactions are rolled back through the
//! multi-version table and their dependents are redone (Section 6.3.2), either
//! eagerly as failures occur or lazily after the graph has been fully
//! explored, according to the abort-handling decision.

#![warn(missing_docs)]

pub mod context;
pub mod explore;
pub mod report;

pub use context::{ExecContext, OpState};
pub use report::{BatchReport, TxnOutcome};

use std::sync::Arc;

use morphstream_common::metrics::Breakdown;
use morphstream_scheduler::{AbortHandling, Granularity, SchedulingDecision};
use morphstream_storage::StateStore;
use morphstream_tpg::{SchedulingUnits, Tpg};

/// Execute one batch (one TPG) against `store` with `num_threads` workers,
/// following `decision`.
///
/// Returns the per-transaction outcomes plus the runtime breakdown gathered
/// while executing.
pub fn execute_batch(
    tpg: Arc<Tpg>,
    decision: SchedulingDecision,
    store: &StateStore,
    num_threads: usize,
) -> BatchReport {
    let units = match decision.granularity {
        Granularity::Fine => SchedulingUnits::fine(&tpg),
        Granularity::Coarse => SchedulingUnits::coarse(&tpg),
    };
    execute_batch_with_units(tpg, units, decision, store, num_threads)
}

/// Like [`execute_batch`], but with a pre-computed unit partition (the engine
/// computes the coarse partition anyway to feed the decision model, so it can
/// be reused here).
pub fn execute_batch_with_units(
    tpg: Arc<Tpg>,
    units: SchedulingUnits,
    decision: SchedulingDecision,
    store: &StateStore,
    num_threads: usize,
) -> BatchReport {
    let num_threads = num_threads.max(1);
    let execute_started = std::time::Instant::now();
    let ctx = ExecContext::new(tpg.clone(), store.clone(), decision.abort_handling);

    let mut breakdown = Breakdown::new();
    explore::run(
        &ctx,
        &units,
        decision.exploration,
        num_threads,
        &mut breakdown,
    );

    // Lazy abort handling: clean up every logged failure now that the TPG has
    // been fully explored.
    if decision.abort_handling == AbortHandling::Lazy {
        ctx.resolve_lazy_aborts(&mut breakdown);
    }

    let mut report = ctx.into_report(breakdown, decision);
    report.execute_wall = execute_started.elapsed();
    report
}
