//! Shared execution context: per-operation finite state machines, result
//! storage, and abort/rollback/redo handling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use morphstream_common::metrics::{Breakdown, BreakdownBucket};
use morphstream_common::{AbortReason, Key, OpId, TxnId, Value};
use morphstream_scheduler::{AbortHandling, SchedulingDecision};
use morphstream_storage::StateStore;
use morphstream_tpg::{AccessKind, Tpg, UdfInput, UdfOutcome};

use crate::report::{BatchReport, TxnOutcome};

/// Execution state of a TPG vertex (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpState {
    /// Not ready to schedule: unresolved dependencies.
    Blocked,
    /// Ready to schedule.
    Ready,
    /// Successfully processed.
    Executed,
    /// Aborted (its own failure or a logically dependent failure).
    Aborted,
}

#[derive(Debug)]
struct OpRuntime {
    state: OpState,
    /// Key the operation actually touched (needed to roll back
    /// non-deterministic accesses, Section 6.5.2).
    resolved_key: Option<Key>,
    /// Whether a version was appended to the state table.
    wrote: bool,
    /// Result value (read value or written value).
    result: Option<Value>,
}

impl Default for OpRuntime {
    fn default() -> Self {
        Self {
            state: OpState::Blocked,
            resolved_key: None,
            wrote: false,
            result: None,
        }
    }
}

/// Shared execution context for one batch.
pub struct ExecContext {
    tpg: Arc<Tpg>,
    store: StateStore,
    abort_mode: AbortHandling,
    runtime: Vec<Mutex<OpRuntime>>,
    in_flight: Vec<AtomicBool>,
    dirty: Vec<AtomicBool>,
    txn_aborted: Vec<AtomicBool>,
    txn_reasons: Mutex<HashMap<TxnId, AbortReason>>,
    /// Failures logged for lazy abort handling.
    failures: Mutex<Vec<(OpId, AbortReason)>>,
    /// Global abort coordinator: abort propagation, rollback and redo run
    /// under this lock so they never race with each other.
    coordinator: Mutex<()>,
    udf_evaluations: AtomicUsize,
    redone_ops: AtomicUsize,
}

impl ExecContext {
    /// Create the context for one batch.
    pub fn new(tpg: Arc<Tpg>, store: StateStore, abort_mode: AbortHandling) -> Self {
        let n = tpg.num_ops();
        let t = tpg.num_txns();
        Self {
            tpg,
            store,
            abort_mode,
            runtime: (0..n).map(|_| Mutex::new(OpRuntime::default())).collect(),
            in_flight: (0..n).map(|_| AtomicBool::new(false)).collect(),
            dirty: (0..n).map(|_| AtomicBool::new(false)).collect(),
            txn_aborted: (0..t).map(|_| AtomicBool::new(false)).collect(),
            txn_reasons: Mutex::new(HashMap::new()),
            failures: Mutex::new(Vec::new()),
            coordinator: Mutex::new(()),
            udf_evaluations: AtomicUsize::new(0),
            redone_ops: AtomicUsize::new(0),
        }
    }

    /// The TPG being executed.
    pub fn tpg(&self) -> &Tpg {
        &self.tpg
    }

    /// State of an operation.
    pub fn op_state(&self, op: OpId) -> OpState {
        self.runtime[op].lock().state
    }

    /// Whether the operation reached a terminal state (executed or aborted).
    pub fn op_settled(&self, op: OpId) -> bool {
        matches!(self.op_state(op), OpState::Executed | OpState::Aborted)
    }

    /// Whether the transaction has been marked aborted.
    pub fn txn_aborted(&self, txn: TxnId) -> bool {
        self.txn_aborted[txn].load(Ordering::Acquire)
    }

    // ------------------------------------------------------------------
    // Operation execution
    // ------------------------------------------------------------------

    /// Run one operation: mark it ready, evaluate its UDF against the
    /// multi-version store, append the produced version, and settle its FSM
    /// state. On failure the abort-handling mechanism configured for the
    /// batch is applied.
    pub fn run_op(&self, op: OpId, breakdown: &mut Breakdown) {
        let txn = self.tpg.op(op).txn;

        // Under eager aborts, a transaction known to be aborted poisons all of
        // its remaining operations immediately (LD propagation).
        if self.abort_mode == AbortHandling::Eager && self.txn_aborted(txn) {
            let mut rt = self.runtime[op].lock();
            if rt.state != OpState::Aborted {
                rt.state = OpState::Aborted;
            }
            return;
        }

        {
            let mut rt = self.runtime[op].lock();
            if rt.state == OpState::Aborted || rt.state == OpState::Executed {
                return;
            }
            rt.state = OpState::Ready;
        }
        self.in_flight[op].store(true, Ordering::Release);

        let started = Instant::now();
        let evaluated = self.evaluate(op);
        breakdown.add(BreakdownBucket::Useful, started.elapsed());

        match evaluated {
            Ok((resolved_key, result, wrote)) => {
                let mut rollback_own_write = false;
                {
                    let mut rt = self.runtime[op].lock();
                    if rt.state == OpState::Aborted {
                        // The transaction aborted while we were executing;
                        // undo our own write.
                        rollback_own_write = wrote;
                    } else {
                        rt.state = OpState::Executed;
                        rt.resolved_key = Some(resolved_key);
                        rt.wrote = wrote;
                        rt.result = Some(result);
                    }
                }
                self.in_flight[op].store(false, Ordering::Release);
                if rollback_own_write {
                    let t0 = Instant::now();
                    self.rollback_op_write(op, resolved_key);
                    breakdown.add(BreakdownBucket::Abort, t0.elapsed());
                }
                // An abort handler may have marked us dirty while we were
                // executing: our inputs were rolled back, so redo ourselves.
                if self.dirty[op].swap(false, Ordering::AcqRel) {
                    let t0 = Instant::now();
                    let _guard = self.coordinator.lock();
                    self.redo_ops_locked(vec![op], breakdown);
                    breakdown.add(BreakdownBucket::Abort, t0.elapsed());
                }
            }
            Err(reason) => {
                self.in_flight[op].store(false, Ordering::Release);
                let t0 = Instant::now();
                self.handle_failure(op, reason, breakdown);
                breakdown.add(BreakdownBucket::Abort, t0.elapsed());
            }
        }
    }

    /// Evaluate an operation against the store: resolve the key, gather UDF
    /// inputs, run the UDF, and append the resulting version for writes.
    /// Returns `(resolved_key, result_value, wrote_version)`.
    fn evaluate(&self, op: OpId) -> Result<(Key, Value, bool), AbortReason> {
        self.udf_evaluations.fetch_add(1, Ordering::Relaxed);
        let operation = self.tpg.op(op);
        let spec = &operation.spec;
        let ts = operation.ts;
        let key = spec.target.resolve(ts);

        // Emulated UDF complexity (the paper's `C` knob): spin for cost_us.
        if spec.cost_us > 0 {
            let deadline = Instant::now() + std::time::Duration::from_micros(spec.cost_us);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }

        // Visibility: strictly earlier timestamps (operations of the same
        // transaction do not see each other's writes, Section 2.1.1).
        let target_value = self
            .store
            .read_before(spec.table, key, ts, 0)
            .unwrap_or_default();

        let mut params = Vec::with_capacity(spec.params.len());
        for p in &spec.params {
            params.push(
                self.store
                    .read_before(p.table, p.key, ts, 0)
                    .unwrap_or_default(),
            );
        }

        let window_values = if let Some(window) = spec.window {
            let lo = ts.saturating_sub(window);
            match spec.kind {
                AccessKind::WindowRead => self
                    .store
                    .window_values(spec.table, key, lo, ts)
                    .unwrap_or_default(),
                AccessKind::WindowWrite => {
                    let mut all = Vec::new();
                    for p in &spec.params {
                        all.extend(
                            self.store
                                .window_values(p.table, p.key, lo, ts)
                                .unwrap_or_default(),
                        );
                    }
                    all
                }
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        };

        let input = UdfInput {
            target: target_value,
            params,
            window: window_values,
            ts,
        };

        let outcome = match &spec.udf {
            Some(udf) => udf(&input)?,
            None => UdfOutcome::Unchanged,
        };

        let (result, wrote) = match outcome {
            UdfOutcome::Value(v) => {
                if spec.kind.is_write() {
                    self.store
                        .write(spec.table, key, ts, operation.stmt, op as u64, v)
                        .map_err(|e| AbortReason::ConsistencyViolation {
                            state: morphstream_common::StateRef::new(spec.table, key),
                            detail: e.to_string(),
                        })?;
                    (v, true)
                } else {
                    (v, false)
                }
            }
            UdfOutcome::Unchanged => (input.target, false),
        };
        Ok((key, result, wrote))
    }

    fn rollback_op_write(&self, op: OpId, key: Key) {
        let operation = self.tpg.op(op);
        // Writer ids are batch-local op ids, so they recur in every batch:
        // the rollback must be scoped to this transaction's own timestamp or
        // it could delete a committed version surviving from an earlier batch
        // whose writer happened to share the id.
        let _ = self
            .store
            .rollback_writer_at(operation.spec.table, key, op as u64, operation.ts);
    }

    // ------------------------------------------------------------------
    // Abort handling
    // ------------------------------------------------------------------

    fn handle_failure(&self, op: OpId, reason: AbortReason, breakdown: &mut Breakdown) {
        match self.abort_mode {
            AbortHandling::Eager => {
                let _guard = self.coordinator.lock();
                self.abort_txn_locked(op, reason, breakdown);
            }
            AbortHandling::Lazy => {
                // Log the failure; clean-up happens after the TPG has been
                // fully explored. The failing operation itself is marked
                // aborted so it is not retried, but its siblings keep
                // executing (the wasted work the paper attributes to
                // l-abort).
                {
                    let mut rt = self.runtime[op].lock();
                    rt.state = OpState::Aborted;
                }
                self.failures.lock().push((op, reason));
            }
        }
    }

    /// Resolve all logged failures (lazy abort handling). Must be called once
    /// every operation has settled.
    pub fn resolve_lazy_aborts(&self, breakdown: &mut Breakdown) {
        let failures: Vec<(OpId, AbortReason)> = std::mem::take(&mut *self.failures.lock());
        if failures.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let _guard = self.coordinator.lock();
        for (op, reason) in failures {
            self.abort_txn_locked(op, reason, breakdown);
        }
        breakdown.add(BreakdownBucket::Abort, t0.elapsed());
    }

    /// Abort the transaction of `failed_op`, roll back its executed writes,
    /// and redo every executed dependent operation. Runs with the coordinator
    /// lock held; cascading failures (a redone operation aborting) are
    /// processed until a fixpoint.
    fn abort_txn_locked(&self, failed_op: OpId, reason: AbortReason, breakdown: &mut Breakdown) {
        let mut worklist: Vec<(OpId, AbortReason)> = vec![(failed_op, reason)];
        while let Some((fop, freason)) = worklist.pop() {
            let txn = self.tpg.op(fop).txn;
            if self.txn_aborted[txn].swap(true, Ordering::AcqRel) {
                continue; // already aborted and cleaned up
            }
            self.txn_reasons.lock().entry(txn).or_insert(freason);

            // Abort all operations of the transaction (LD propagation) and
            // roll back the ones that already wrote.
            let mut rolled_back: Vec<OpId> = Vec::new();
            for &sibling in self.tpg.txn_ops(txn) {
                let mut rt = self.runtime[sibling].lock();
                let prev = rt.state;
                rt.state = OpState::Aborted;
                if prev == OpState::Executed && rt.wrote {
                    let key = rt.resolved_key.expect("executed write has a resolved key");
                    rt.wrote = false;
                    drop(rt);
                    self.rollback_op_write(sibling, key);
                    rolled_back.push(sibling);
                }
            }

            // Dependents of the rolled-back writes read values that no longer
            // exist: redo them (transitions T5/T6 of Figure 8).
            let descendants = self.descendants_of(&rolled_back);
            let failures = self.redo_ops_locked(descendants, breakdown);
            worklist.extend(failures);
        }
    }

    /// Transitive TD/PD descendants of `roots`, in timestamp order.
    fn descendants_of(&self, roots: &[OpId]) -> Vec<OpId> {
        let mut seen = vec![false; self.tpg.num_ops()];
        let mut stack: Vec<OpId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(op) = stack.pop() {
            for (child, _) in self.tpg.children(op) {
                if !seen[*child] {
                    seen[*child] = true;
                    out.push(*child);
                    stack.push(*child);
                }
            }
        }
        out.sort_by_key(|&op| (self.tpg.op(op).ts, self.tpg.op(op).stmt, op));
        out
    }

    /// Roll back and re-execute the given operations (skipping aborted ones
    /// and ones that have not executed yet). Returns newly failed operations.
    /// Must be called with the coordinator lock held.
    fn redo_ops_locked(
        &self,
        ops: Vec<OpId>,
        _breakdown: &mut Breakdown,
    ) -> Vec<(OpId, AbortReason)> {
        let mut new_failures = Vec::new();
        for op in ops {
            // In-flight operations will notice the dirty flag themselves once
            // they finish.
            if self.in_flight[op].load(Ordering::Acquire) {
                self.dirty[op].store(true, Ordering::Release);
                continue;
            }
            let (was_executed, wrote, key) = {
                let rt = self.runtime[op].lock();
                (rt.state == OpState::Executed, rt.wrote, rt.resolved_key)
            };
            if !was_executed {
                continue;
            }
            if wrote {
                if let Some(key) = key {
                    self.rollback_op_write(op, key);
                }
            }
            self.redone_ops.fetch_add(1, Ordering::Relaxed);
            match self.evaluate(op) {
                Ok((resolved_key, result, wrote)) => {
                    let mut rt = self.runtime[op].lock();
                    rt.state = OpState::Executed;
                    rt.resolved_key = Some(resolved_key);
                    rt.result = Some(result);
                    rt.wrote = wrote;
                }
                Err(reason) => {
                    let mut rt = self.runtime[op].lock();
                    rt.state = OpState::Aborted;
                    rt.wrote = false;
                    drop(rt);
                    new_failures.push((op, reason));
                }
            }
        }
        new_failures
    }

    // ------------------------------------------------------------------
    // Report assembly
    // ------------------------------------------------------------------

    /// Consume the context and assemble the batch report.
    pub fn into_report(self, breakdown: Breakdown, decision: SchedulingDecision) -> BatchReport {
        let reasons = self.txn_reasons.into_inner();
        let mut outcomes = Vec::with_capacity(self.tpg.num_txns());
        for txn in 0..self.tpg.num_txns() {
            let aborted = self.txn_aborted[txn].load(Ordering::Acquire);
            let mut op_results = Vec::new();
            let mut any_aborted_op = false;
            for &op in self.tpg.txn_ops(txn) {
                let rt = self.runtime[op].lock();
                if rt.state == OpState::Aborted {
                    any_aborted_op = true;
                }
                op_results.push((op, rt.result));
            }
            let committed = !aborted && !any_aborted_op;
            outcomes.push(TxnOutcome {
                txn,
                committed,
                abort_reason: if committed {
                    None
                } else {
                    Some(
                        reasons
                            .get(&txn)
                            .cloned()
                            .unwrap_or(AbortReason::LogicalDependency { txn }),
                    )
                },
                op_results,
            });
        }
        BatchReport {
            outcomes,
            breakdown,
            decision,
            udf_evaluations: self.udf_evaluations.load(Ordering::Relaxed),
            redone_ops: self.redone_ops.load(Ordering::Relaxed),
            execute_wall: std::time::Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_common::metrics::Breakdown;
    use morphstream_common::{StateRef, TableId};
    use morphstream_scheduler::SchedulingDecision;
    use morphstream_tpg::{udfs, OperationSpec, TpgBuilder, Transaction, TransactionBatch};

    const T: TableId = TableId(0);

    fn store_with_balances(n: u64, initial: Value) -> StateStore {
        let store = StateStore::new();
        let t = store.create_table("accounts", initial, false);
        assert_eq!(t, T);
        store.preallocate_range(t, n).unwrap();
        store
    }

    fn run_sequentially(ctx: &ExecContext) -> Breakdown {
        let mut breakdown = Breakdown::new();
        let mut order: Vec<OpId> = (0..ctx.tpg().num_ops()).collect();
        order.sort_by_key(|&op| (ctx.tpg().op(op).ts, ctx.tpg().op(op).stmt));
        for op in order {
            ctx.run_op(op, &mut breakdown);
        }
        breakdown
    }

    #[test]
    fn deposits_accumulate_in_the_store() {
        let store = store_with_balances(4, 0);
        let mut batch = TransactionBatch::new();
        for ts in 1..=5u64 {
            batch.push(Transaction::new(
                ts,
                vec![OperationSpec::write(T, 1, vec![], udfs::add_delta(10))],
            ));
        }
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Eager);
        let breakdown = run_sequentially(&ctx);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        assert_eq!(report.committed(), 5);
        assert_eq!(store.read_latest(T, 1).unwrap(), 50);
    }

    #[test]
    fn failed_withdrawal_aborts_whole_transaction_and_rolls_back() {
        let store = store_with_balances(4, 100);
        // txn at ts1: deposit 50 to key 0 AND withdraw 500 from key 1 (fails).
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::add_delta(50)),
                OperationSpec::write(T, 1, vec![], udfs::withdraw(500)),
            ],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Eager);
        let breakdown = run_sequentially(&ctx);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        assert_eq!(report.aborted(), 1);
        // the deposit of the same transaction is rolled back (LD).
        assert_eq!(store.read_latest(T, 0).unwrap(), 100);
        assert_eq!(store.read_latest(T, 1).unwrap(), 100);
    }

    #[test]
    fn dependents_of_aborted_writes_are_redone() {
        let store = store_with_balances(4, 100);
        let mut batch = TransactionBatch::new();
        // ts1: txn A deposits 100 to key 0 but also fails a withdrawal → aborts.
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::add_delta(100)),
                OperationSpec::write(T, 1, vec![], udfs::withdraw(10_000)),
            ],
        ));
        // ts2: txn B writes key 2 = value of key 0 (parametric dependency).
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(
                T,
                2,
                vec![StateRef::new(T, 0)],
                udfs::sum_params(),
            )],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Lazy);
        let mut breakdown = run_sequentially(&ctx);
        ctx.resolve_lazy_aborts(&mut breakdown);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        // txn A aborted, txn B committed but was redone with the rolled-back
        // value of key 0 (100, not 200).
        assert_eq!(report.aborted(), 1);
        assert_eq!(report.committed(), 1);
        assert_eq!(store.read_latest(T, 2).unwrap(), 100);
        assert!(report.redone_ops >= 1);
    }

    #[test]
    fn eager_mode_skips_remaining_ops_of_aborted_txns() {
        let store = store_with_balances(4, 0);
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::always_abort()),
                OperationSpec::write(T, 1, vec![], udfs::add_delta(5)),
            ],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Eager);
        let breakdown = run_sequentially(&ctx);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        assert_eq!(report.aborted(), 1);
        // the second op never wrote because the txn was already aborted.
        assert_eq!(store.read_latest(T, 1).unwrap(), 0);
        assert_eq!(report.outcomes[0].abort_reason, Some(AbortReason::Injected));
    }

    #[test]
    fn lazy_mode_wastes_work_but_reaches_the_same_state() {
        let store_eager = store_with_balances(4, 0);
        let store_lazy = store_with_balances(4, 0);
        let make_batch = || {
            let mut batch = TransactionBatch::new();
            batch.push(Transaction::new(
                1,
                vec![
                    OperationSpec::write(T, 0, vec![], udfs::always_abort()),
                    OperationSpec::write(T, 1, vec![], udfs::add_delta(5)),
                ],
            ));
            batch.push(Transaction::new(
                2,
                vec![OperationSpec::write(T, 1, vec![], udfs::add_delta(7))],
            ));
            batch
        };
        let run = |store: &StateStore, mode: AbortHandling| {
            let tpg = Arc::new(TpgBuilder::new().build(make_batch()));
            let ctx = ExecContext::new(tpg, store.clone(), mode);
            let mut breakdown = run_sequentially(&ctx);
            if mode == AbortHandling::Lazy {
                ctx.resolve_lazy_aborts(&mut breakdown);
            }
            ctx.into_report(breakdown, SchedulingDecision::default())
        };
        let eager = run(&store_eager, AbortHandling::Eager);
        let lazy = run(&store_lazy, AbortHandling::Lazy);
        assert_eq!(eager.committed(), 1);
        assert_eq!(lazy.committed(), 1);
        assert_eq!(
            store_eager.read_latest(T, 1).unwrap(),
            store_lazy.read_latest(T, 1).unwrap()
        );
        // lazy evaluated at least as many UDFs (the wasted sibling work).
        assert!(lazy.udf_evaluations >= eager.udf_evaluations);
    }

    #[test]
    fn window_reads_aggregate_past_versions() {
        let store = store_with_balances(4, 0);
        let mut batch = TransactionBatch::new();
        for ts in 1..=5u64 {
            batch.push(Transaction::new(
                ts,
                vec![OperationSpec::write(
                    T,
                    0,
                    vec![],
                    udfs::set_value(ts as Value),
                )],
            ));
        }
        batch.push(Transaction::new(
            6,
            vec![OperationSpec::window_read(T, 0, 3, udfs::window_sum())],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Eager);
        let breakdown = run_sequentially(&ctx);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        // window covers timestamps 3..=6 → versions 3, 4, 5 → sum 12.
        assert_eq!(report.outcomes[5].result(0), Some(12));
    }

    #[test]
    fn non_deterministic_writes_resolve_and_roll_back_correctly() {
        let store = store_with_balances(8, 0);
        let mut batch = TransactionBatch::new();
        // ts1: non-det write to key ts%8 = 1, value 42, but txn also aborts.
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::non_det_write(T, Arc::new(|ts| ts % 8), vec![], udfs::set_value(42)),
                OperationSpec::write(T, 5, vec![], udfs::always_abort()),
            ],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store.clone(), AbortHandling::Lazy);
        let mut breakdown = run_sequentially(&ctx);
        ctx.resolve_lazy_aborts(&mut breakdown);
        let report = ctx.into_report(breakdown, SchedulingDecision::default());
        assert_eq!(report.aborted(), 1);
        // the non-deterministic write to key 1 was rolled back.
        assert_eq!(store.read_latest(T, 1).unwrap(), 0);
    }

    #[test]
    fn op_states_transition_to_terminal_states() {
        let store = store_with_balances(2, 0);
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        let tpg = Arc::new(TpgBuilder::new().build(batch));
        let ctx = ExecContext::new(tpg, store, AbortHandling::Eager);
        assert_eq!(ctx.op_state(0), OpState::Blocked);
        assert!(!ctx.op_settled(0));
        let mut b = Breakdown::new();
        ctx.run_op(0, &mut b);
        assert_eq!(ctx.op_state(0), OpState::Executed);
        assert!(ctx.op_settled(0));
        assert!(!ctx.txn_aborted(0));
    }
}
