//! Shared batching pipeline for the baseline engines.
//!
//! All baselines consume the same [`StreamApp`] applications as MorphStream
//! and report the same [`RunReport`] metrics; they differ only in how a batch
//! of transactions is executed. This module factors the common
//! punctuation/batching/measurement loop so each baseline only supplies an
//! `execute` closure.

use std::time::Instant;

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::metrics::{Breakdown, Throughput};
use morphstream_common::Timestamp;
use morphstream_tpg::{Transaction, TransactionBatch};

use morphstream::{BatchSummary, RunReport};

/// Result of executing one batch in a baseline engine.
pub(crate) struct ExecutedBatch {
    pub outcomes: Vec<TxnOutcome>,
    pub breakdown: Breakdown,
    pub redone_ops: usize,
}

/// Drive the common pipeline: split `events` into punctuation-delimited
/// batches, build transactions through the application, call `execute` per
/// batch, post-process, and gather metrics.
pub(crate) fn run_pipeline<A, F>(
    app: &A,
    store: &StateStore,
    config: &EngineConfig,
    events: Vec<A::Event>,
    mut execute: F,
) -> RunReport<A::Output>
where
    A: StreamApp,
    F: FnMut(TransactionBatch, &StateStore, usize) -> ExecutedBatch,
{
    let mut report = RunReport::new();
    let punctuation = config.punctuation_interval.unwrap_or(usize::MAX).max(1);
    let run_started = Instant::now();
    let mut next_ts: Timestamp = 0;

    for (batch_index, chunk) in events
        .chunks(punctuation.min(events.len().max(1)))
        .enumerate()
    {
        let batch_started = Instant::now();
        let mut batch =
            TransactionBatch::new().with_expected_abort_ratio(app.expected_abort_ratio());
        for (event_index, event) in chunk.iter().enumerate() {
            next_ts += 1;
            let mut builder = TxnBuilder::new();
            app.state_access(event, &mut builder);
            batch.push(Transaction::new(next_ts, builder.into_ops()).with_event_index(event_index));
        }

        let executed = execute(batch, store, config.num_threads);
        let committed = executed.outcomes.iter().filter(|o| o.committed).count();
        let aborted = executed.outcomes.len() - committed;

        for (event, outcome) in chunk.iter().zip(&executed.outcomes) {
            report.outputs.push(app.post_process(event, outcome));
        }

        if config.reclaim_after_batch {
            store.truncate_before(next_ts);
        }
        let elapsed = batch_started.elapsed();
        let latency_us = elapsed.as_micros() as u64;
        for _ in 0..chunk.len() {
            report.latency.record_micros(latency_us);
        }
        report.committed += committed;
        report.aborted += aborted;
        report
            .throughput
            .merge(&Throughput::new(chunk.len() as u64, elapsed));
        report.breakdown.merge(&executed.breakdown);
        let bytes_retained = store.bytes_retained();
        report.memory.record(run_started.elapsed(), bytes_retained);
        report.batches.push(BatchSummary {
            batch: batch_index,
            events: chunk.len(),
            committed,
            aborted,
            elapsed,
            decision: Default::default(),
            redone_ops: executed.redone_ops,
            bytes_retained,
        });
    }
    report
}
