//! Shared push-based ingestion glue for the baseline engines.
//!
//! All baselines consume the same [`StreamApp`] applications as MorphStream
//! and report the same [`RunReport`] metrics; they differ only in how a batch
//! of transactions is executed. The session mechanics (event buffer,
//! punctuation cuts, batch indexing, hook firing, metric folding, finish-time
//! reset) come from the engine crate's
//! [`SessionState`](morphstream::SessionState) — the same state machine
//! MorphStream itself runs on — so the systems under comparison cannot drift
//! in their bookkeeping. This module adds only what is baseline-specific:
//! turning a chunk of events into a timestamped [`TransactionBatch`] and
//! handing it to the baseline's `execute` closure.

use std::time::Instant;

use morphstream::storage::StateStore;
use morphstream::{
    BatchHook, EngineConfig, PendingBatch, SessionState, StreamApp, TxnBuilder, TxnOutcome,
};
use morphstream_common::metrics::{Breakdown, StageTimings};
use morphstream_common::Timestamp;
use morphstream_tpg::{Transaction, TransactionBatch};

use morphstream::{BatchSummary, RunReport};

/// Result of executing one batch in a baseline engine.
pub(crate) struct ExecutedBatch {
    pub outcomes: Vec<TxnOutcome>,
    pub breakdown: Breakdown,
    pub redone_ops: usize,
}

/// Punctuation-driven ingestion state shared by every baseline: the common
/// [`SessionState`] plus the monotonically increasing event timestamp the
/// baselines stamp their transactions with.
pub(crate) struct IngestState<A: StreamApp> {
    session: SessionState<A::Event, A::Output>,
    next_ts: Timestamp,
}

impl<A: StreamApp> IngestState<A> {
    pub fn new() -> Self {
        Self {
            session: SessionState::new(),
            next_ts: 0,
        }
    }

    /// Buffer `event`; returns `true` when the punctuation interval was
    /// crossed and the caller must cut a batch with [`IngestState::flush`].
    /// Split from the flush so the per-event path stays a plain buffer push
    /// and baselines build their batch executor only when a batch is due.
    pub fn buffer_event(&mut self, event: A::Event, config: &EngineConfig) -> bool {
        let punctuation = config.punctuation_interval.unwrap_or(usize::MAX);
        self.session.ingest(event, punctuation)
    }

    /// Process the buffered events as a (possibly partial) batch; a no-op on
    /// an empty buffer.
    pub fn flush<F>(&mut self, app: &A, store: &StateStore, config: &EngineConfig, execute: F)
    where
        F: FnMut(TransactionBatch, &StateStore, usize) -> ExecutedBatch,
    {
        self.process_pending(app, store, config, execute);
    }

    /// Close the session and return the accumulated report.
    pub fn finish(&mut self) -> RunReport<A::Output> {
        self.session.finish()
    }

    /// The report accumulated so far in the current session.
    pub fn report(&self) -> &RunReport<A::Output> {
        self.session.report()
    }

    /// Install (or clear) the per-batch observability hook.
    pub fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.session.set_batch_hook(hook);
    }

    /// Install (or remove) the output sink (see
    /// [`TxnEngine::set_output_sink`](morphstream::TxnEngine::set_output_sink)).
    pub fn set_output_sink(&mut self, sink: Option<morphstream::OutputSink<A::Output>>) {
        self.session.set_output_sink(sink);
    }

    fn process_pending<F>(
        &mut self,
        app: &A,
        store: &StateStore,
        config: &EngineConfig,
        mut execute: F,
    ) where
        F: FnMut(TransactionBatch, &StateStore, usize) -> ExecutedBatch,
    {
        let Some(PendingBatch {
            events: chunk,
            batch: batch_index,
        }) = self.session.begin_batch()
        else {
            return;
        };
        let batch_started = Instant::now();
        let mut batch =
            TransactionBatch::new().with_expected_abort_ratio(app.expected_abort_ratio());
        for (event_index, event) in chunk.iter().enumerate() {
            self.next_ts += 1;
            let mut builder = TxnBuilder::new();
            app.state_access(event, &mut builder);
            batch.push(
                Transaction::new(self.next_ts, builder.into_ops()).with_event_index(event_index),
            );
        }
        let construct = batch_started.elapsed();

        // The execute stage spans execution, post-processing and reclamation
        // — the same interval the MorphStream engine reports, so the
        // construct/execute split (and the throughput derived from it) is
        // comparable across systems.
        let execute_started = Instant::now();
        let executed = execute(batch, store, config.num_threads);
        let committed = executed.outcomes.iter().filter(|o| o.committed).count();
        let aborted = executed.outcomes.len() - committed;

        for (event, outcome) in chunk.iter().zip(&executed.outcomes) {
            self.session.push_output(app.post_process(event, outcome));
        }

        if config.reclaim_after_batch {
            store.truncate_before(self.next_ts);
        }
        let execute_wall = execute_started.elapsed();
        let summary = BatchSummary {
            batch: batch_index,
            events: chunk.len(),
            committed,
            aborted,
            elapsed: batch_started.elapsed(),
            decision: Default::default(),
            redone_ops: executed.redone_ops,
            bytes_retained: store.bytes_retained(),
            // Baselines construct and execute strictly in sequence, so no
            // construction time is ever hidden behind execution.
            timings: StageTimings {
                construct,
                execute: execute_wall,
                overlap: std::time::Duration::ZERO,
            },
        };
        self.session
            .complete_batch(chunk, summary, &executed.breakdown);
    }
}
