//! Conventional SPE with external shared state — the Flink + Redis stand-in
//! of Figure 11.
//!
//! Conventional stream processing engines have no built-in shared mutable
//! state, so the common workaround (and the paper's comparison point) is to
//! keep the state in an external store and guard multi-key updates with a
//! distributed lock. That architecture pays two costs on every state access:
//! a network round trip and, when correctness matters, global lock
//! contention. This module models both: every state access spins for
//! `remote_state_latency_us` (the emulated round trip) and, in the
//! `with_locks` configuration, the whole transaction holds a global mutex.
//! Disabling the lock recovers some throughput but allows lost updates —
//! exactly the correctness problem Section 8.2.1 points out.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use morphstream::storage::StateStore;
use morphstream::{BatchHook, EngineConfig, RunReport, StreamApp, TxnEngine, TxnOutcome};
use morphstream_common::metrics::{Breakdown, BreakdownBucket};
use morphstream_common::{AbortReason, Timestamp};
use morphstream_tpg::{AccessKind, Transaction, UdfInput, UdfOutcome};

use crate::harness::{ExecutedBatch, IngestState};

/// The conventional-SPE baseline engine.
pub struct LockedSpeEngine<A: StreamApp> {
    app: A,
    store: StateStore,
    config: EngineConfig,
    with_locks: bool,
    /// Execution-order clock shared by every batch of the engine's lifetime;
    /// it starts far above any event timestamp so the newest write of the
    /// external store always wins over event-time versions.
    exec_clock: Arc<std::sync::atomic::AtomicU64>,
    state: IngestState<A>,
}

impl<A: StreamApp> LockedSpeEngine<A> {
    /// Engine that guards every transaction with a global lock (correct but
    /// slow).
    pub fn with_locks(app: A, store: StateStore, config: EngineConfig) -> Self {
        Self::new(app, store, config, true)
    }

    /// Engine without locking (fast but incorrect under contention).
    pub fn without_locks(app: A, store: StateStore, config: EngineConfig) -> Self {
        Self::new(app, store, config, false)
    }

    fn new(app: A, store: StateStore, config: EngineConfig, with_locks: bool) -> Self {
        Self {
            app,
            store,
            config,
            with_locks,
            exec_clock: Arc::new(std::sync::atomic::AtomicU64::new(1 << 32)),
            state: IngestState::new(),
        }
    }

    /// Shared state store handle.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Process a stream of events — convenience wrapper over the push-based
    /// [`TxnEngine`] session.
    pub fn process(&mut self, events: Vec<A::Event>) -> RunReport<A::Output> {
        self.run(events)
    }

    /// Batch executor: round-robin workers against the latest state values,
    /// optionally under the global lock.
    fn execute(
        &self,
    ) -> impl FnMut(morphstream_tpg::TransactionBatch, &StateStore, usize) -> ExecutedBatch {
        let with_locks = self.with_locks;
        let remote_latency = Duration::from_micros(self.config.remote_state_latency_us);
        let exec_clock = self.exec_clock.clone();
        move |batch, store, threads| {
            execute_locked_batch(
                batch.into_sorted(),
                store,
                threads,
                with_locks,
                remote_latency,
                &exec_clock,
            )
        }
    }
}

impl<A: StreamApp> TxnEngine for LockedSpeEngine<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn ingest(&mut self, event: A::Event) {
        // Plain buffer push per event; the executor is only built when the
        // punctuation interval is crossed and a batch must be cut.
        if self.state.buffer_event(event, &self.config) {
            TxnEngine::flush(self);
        }
    }

    fn flush(&mut self) {
        let execute = self.execute();
        self.state
            .flush(&self.app, &self.store, &self.config, execute);
    }

    fn finish(&mut self) -> RunReport<A::Output> {
        TxnEngine::flush(self);
        self.state.finish()
    }

    fn report(&self) -> &RunReport<A::Output> {
        self.state.report()
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.state.set_batch_hook(hook);
    }

    fn set_output_sink(&mut self, sink: Option<morphstream::OutputSink<A::Output>>) {
        self.state.set_output_sink(sink);
    }
}

/// Execute a batch the conventional-SPE way: events are spread round-robin
/// over the workers and each transaction runs its operations one by one
/// against the *latest* value of every state (no multi-versioning, no
/// dependency tracking).
fn execute_locked_batch(
    txns: Vec<Transaction>,
    store: &StateStore,
    threads: usize,
    with_locks: bool,
    remote_latency: Duration,
    exec_clock: &Arc<std::sync::atomic::AtomicU64>,
) -> ExecutedBatch {
    let n = txns.len();
    let global_lock = Mutex::new(());
    let outcomes: Vec<Mutex<Option<TxnOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next_writer = AtomicUsize::new(0);
    let txns = Arc::new(txns);

    let partials: Vec<Breakdown> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let txns = txns.clone();
            let outcomes = &outcomes;
            let global_lock = &global_lock;
            let next_writer = &next_writer;
            let exec_clock = exec_clock.clone();
            handles.push(scope.spawn(move || {
                let mut breakdown = Breakdown::new();
                for (txn_idx, txn) in txns.iter().enumerate().skip(worker).step_by(threads) {
                    let lock_wait = Instant::now();
                    let guard = if with_locks {
                        Some(global_lock.lock())
                    } else {
                        None
                    };
                    breakdown.add(BreakdownBucket::Lock, lock_wait.elapsed());

                    let useful = Instant::now();
                    let outcome = run_transaction(
                        txn_idx,
                        txn,
                        store,
                        remote_latency,
                        next_writer,
                        &exec_clock,
                    );
                    breakdown.add(BreakdownBucket::Useful, useful.elapsed());
                    drop(guard);
                    *outcomes[txn_idx].lock() = Some(outcome);
                }
                breakdown
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("locked-SPE worker panicked"))
            .collect()
    });

    let mut breakdown = Breakdown::new();
    for partial in partials {
        breakdown.merge(&partial);
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| {
            o.into_inner()
                .expect("every transaction produced an outcome")
        })
        .collect();
    ExecutedBatch {
        outcomes,
        breakdown,
        redone_ops: 0,
    }
}

fn run_transaction(
    txn_idx: usize,
    txn: &Transaction,
    store: &StateStore,
    remote_latency: Duration,
    next_writer: &AtomicUsize,
    exec_clock: &std::sync::atomic::AtomicU64,
) -> TxnOutcome {
    let mut op_results = Vec::with_capacity(txn.ops.len());
    let mut written: Vec<(
        morphstream_common::TableId,
        morphstream_common::Key,
        u64,
        u64,
    )> = Vec::new();
    let mut abort_reason: Option<AbortReason> = None;

    for (stmt, spec) in txn.ops.iter().enumerate() {
        if abort_reason.is_some() {
            op_results.push((stmt, None));
            continue;
        }
        let key = spec.target.resolve(txn.ts);
        emulate_round_trip(remote_latency);
        let target = store.read_latest(spec.table, key).unwrap_or_default();
        let mut params = Vec::with_capacity(spec.params.len());
        for p in &spec.params {
            emulate_round_trip(remote_latency);
            params.push(store.read_latest(p.table, p.key).unwrap_or_default());
        }
        let window = match (spec.window, spec.kind) {
            (Some(w), AccessKind::WindowRead) => store
                .window_values(spec.table, key, txn.ts.saturating_sub(w), txn.ts)
                .unwrap_or_default(),
            (Some(w), AccessKind::WindowWrite) => {
                let mut all = Vec::new();
                for p in &spec.params {
                    all.extend(
                        store
                            .window_values(p.table, p.key, txn.ts.saturating_sub(w), txn.ts)
                            .unwrap_or_default(),
                    );
                }
                all
            }
            _ => Vec::new(),
        };
        if spec.cost_us > 0 {
            let deadline = Instant::now() + Duration::from_micros(spec.cost_us);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        let input = UdfInput {
            target,
            params,
            window,
            ts: txn.ts,
        };
        let outcome = match &spec.udf {
            Some(udf) => udf(&input),
            None => Ok(UdfOutcome::Unchanged),
        };
        match outcome {
            Ok(UdfOutcome::Value(v)) => {
                if spec.kind.is_write() {
                    emulate_round_trip(remote_latency);
                    let writer = u64::MAX / 2 + next_writer.fetch_add(1, Ordering::Relaxed) as u64;
                    let exec_ts = exec_clock.fetch_add(1, Ordering::Relaxed);
                    let _ = store.write(spec.table, key, exec_ts, stmt as u32, writer, v);
                    written.push((spec.table, key, writer, exec_ts));
                }
                op_results.push((stmt, Some(v)));
            }
            Ok(UdfOutcome::Unchanged) => op_results.push((stmt, Some(input.target))),
            Err(reason) => {
                abort_reason = Some(reason);
                op_results.push((stmt, None));
            }
        }
    }

    if abort_reason.is_some() {
        // Roll the transaction's writes back, as the distributed-transaction
        // wrapper around the external store would. The rollback is scoped to
        // the exact (writer, ts) of each write: writer ids restart per batch,
        // so an unscoped rollback could delete a version that survived from
        // an earlier batch under a recycled id.
        for (table, key, writer, exec_ts) in written {
            let _ = store.rollback_writer_at(table, key, writer, exec_ts);
        }
    }

    TxnOutcome {
        txn: txn_idx,
        committed: abort_reason.is_none(),
        abort_reason,
        op_results: op_results.into_iter().collect(),
    }
}

#[inline]
fn emulate_round_trip(latency: Duration) {
    if latency.is_zero() {
        return;
    }
    let deadline = Instant::now() + latency;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Timestamp type re-exported for documentation completeness.
#[allow(dead_code)]
type Ts = Timestamp;

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::udfs;
    use morphstream::TxnBuilder;
    use morphstream_common::{TableId, Value};

    struct Counter {
        table: TableId,
    }

    impl StreamApp for Counter {
        type Event = u64;
        type Output = bool;

        fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, event % 4, udfs::add_delta(1));
        }

        fn post_process(&self, _e: &u64, outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    fn setup() -> (StateStore, TableId) {
        let store = StateStore::new();
        let table = store.create_table("counters", 0, false);
        store.preallocate_range(table, 4).unwrap();
        (store, table)
    }

    #[test]
    fn locked_variant_is_correct_under_contention() {
        let (store, table) = setup();
        let mut engine = LockedSpeEngine::with_locks(
            Counter { table },
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(100),
        );
        let report = engine.process((0..400).collect());
        assert_eq!(report.committed, 400);
        let total: Value = store.snapshot_latest(table).unwrap().values().sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn unlocked_variant_loses_updates_under_contention() {
        // All events hammer the same 4 keys from 8 threads without any
        // synchronisation: read-modify-write races lose increments. The test
        // only asserts the total never exceeds the correct value and the
        // engine still reports the events processed (it cannot detect its own
        // incorrectness — that is the point of Figure 11's caveat).
        let (store, table) = setup();
        let mut engine = LockedSpeEngine::without_locks(
            Counter { table },
            store.clone(),
            EngineConfig::with_threads(8).with_punctuation_interval(2_000),
        );
        let report = engine.process((0..2_000).collect());
        assert_eq!(report.events(), 2_000);
        let total: Value = store.snapshot_latest(table).unwrap().values().sum();
        assert!(total <= 2_000);
    }

    #[test]
    fn remote_latency_slows_processing_down() {
        let (store, table) = setup();
        let mut fast = LockedSpeEngine::with_locks(
            Counter { table },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let fast_report = fast.process((0..100).collect());

        let (store2, table2) = setup();
        let mut slow_config = EngineConfig::with_threads(2).with_punctuation_interval(100);
        slow_config.remote_state_latency_us = 200;
        let mut slow = LockedSpeEngine::with_locks(Counter { table: table2 }, store2, slow_config);
        let slow_report = slow.process((0..100).collect());

        assert!(
            slow_report.throughput.elapsed > fast_report.throughput.elapsed,
            "simulated round trips must add processing time"
        );
    }
}
