//! TStream reconstruction (Section 2.2).
//!
//! TStream decomposes transactions into atomic operations, groups operations
//! targeting the same state into timestamp-sorted *operation chains*, and
//! executes the chains in parallel; chains wait (busy-wait) on unresolved
//! parametric dependencies. Logical dependencies are ignored during
//! execution: aborts are only handled after the whole batch has been
//! processed, and the system then re-processes the batch, which is the source
//! of its large abort overhead (Figures 12 and 16a).
//!
//! The reconstruction maps this to coarse (per-key) units explored with the
//! structured DFS driver (spin-waiting on dependencies, like TStream's
//! blocking) and lazy abort handling; when any transaction aborted, the
//! wasted re-processing of the batch is emulated by re-spinning the useful
//! time once, mirroring the whole-batch redo.

use std::sync::Arc;
use std::time::Instant;

use morphstream::storage::StateStore;
use morphstream::{
    AbortHandling, BatchHook, EngineConfig, ExplorationStrategy, Granularity, RunReport,
    SchedulingDecision, StreamApp, TxnEngine,
};
use morphstream_common::metrics::BreakdownBucket;
use morphstream_executor::execute_batch_with_units;
use morphstream_tpg::{SchedulingUnits, TpgBuilder, TransactionBatch};

use crate::harness::{ExecutedBatch, IngestState};

/// The TStream baseline engine.
pub struct TStreamEngine<A: StreamApp> {
    app: A,
    store: StateStore,
    config: EngineConfig,
    /// Emulate the whole-batch redo TStream performs when any transaction of
    /// the batch aborted. Enabled by default; disabled in a few unit tests.
    emulate_batch_redo: bool,
    state: IngestState<A>,
}

impl<A: StreamApp> TStreamEngine<A> {
    /// Create a TStream engine for `app` over `store`.
    pub fn new(app: A, store: StateStore, config: EngineConfig) -> Self {
        Self {
            app,
            store,
            config,
            emulate_batch_redo: true,
            state: IngestState::new(),
        }
    }

    /// Toggle the whole-batch redo emulation.
    pub fn with_batch_redo_emulation(mut self, enabled: bool) -> Self {
        self.emulate_batch_redo = enabled;
        self
    }

    /// Shared state store handle.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Process a stream of events — convenience wrapper over the push-based
    /// [`TxnEngine`] session.
    pub fn process(&mut self, events: Vec<A::Event>) -> RunReport<A::Output> {
        self.run(events)
    }

    /// Batch executor: per-key operation chains with lazy aborts and the
    /// whole-batch redo penalty.
    fn execute(
        emulate_batch_redo: bool,
    ) -> impl FnMut(TransactionBatch, &StateStore, usize) -> ExecutedBatch {
        let decision = SchedulingDecision {
            exploration: ExplorationStrategy::StructuredDfs,
            granularity: Granularity::Coarse,
            abort_handling: AbortHandling::Lazy,
        };
        let planner = TpgBuilder::new();
        move |batch, store, threads| {
            let tpg = Arc::new(planner.build(batch));
            let units = SchedulingUnits::coarse(&tpg);
            let execute_started = Instant::now();
            let report = execute_batch_with_units(tpg, units, decision, store, threads);
            let execute_elapsed = execute_started.elapsed();
            let mut breakdown = report.breakdown.clone();
            if emulate_batch_redo && report.aborted() > 0 {
                // TStream redoes the entire batch once aborts are discovered;
                // emulate the wasted wall-clock time of that redo.
                let redo_deadline = Instant::now() + execute_elapsed;
                while Instant::now() < redo_deadline {
                    std::hint::spin_loop();
                }
                breakdown.add(BreakdownBucket::Abort, execute_elapsed);
            }
            ExecutedBatch {
                redone_ops: report.redone_ops,
                breakdown,
                outcomes: report.outcomes,
            }
        }
    }
}

impl<A: StreamApp> TxnEngine for TStreamEngine<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn ingest(&mut self, event: A::Event) {
        // Plain buffer push per event; the executor is only built when the
        // punctuation interval is crossed and a batch must be cut.
        if self.state.buffer_event(event, &self.config) {
            TxnEngine::flush(self);
        }
    }

    fn flush(&mut self) {
        self.state.flush(
            &self.app,
            &self.store,
            &self.config,
            Self::execute(self.emulate_batch_redo),
        );
    }

    fn finish(&mut self) -> RunReport<A::Output> {
        TxnEngine::flush(self);
        self.state.finish()
    }

    fn report(&self) -> &RunReport<A::Output> {
        self.state.report()
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.state.set_batch_hook(hook);
    }

    fn set_output_sink(&mut self, sink: Option<morphstream::OutputSink<A::Output>>) {
        self.state.set_output_sink(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::udfs;
    use morphstream::TxnBuilder;
    use morphstream_common::{TableId, Value};
    use morphstream_executor::TxnOutcome;

    struct Deposits {
        accounts: TableId,
        abort_every: u64,
    }

    impl StreamApp for Deposits {
        type Event = u64;
        type Output = bool;

        fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
            if self.abort_every > 0 && event.is_multiple_of(self.abort_every) {
                txn.write(self.accounts, event % 16, udfs::always_abort());
            } else {
                txn.write(self.accounts, event % 16, udfs::add_delta(10));
            }
        }

        fn post_process(&self, _e: &u64, outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    fn setup() -> (StateStore, TableId) {
        let store = StateStore::new();
        let accounts = store.create_table("accounts", 0, false);
        store.preallocate_range(accounts, 16).unwrap();
        (store, accounts)
    }

    #[test]
    fn tstream_commits_clean_workloads() {
        let (store, accounts) = setup();
        let mut engine = TStreamEngine::new(
            Deposits {
                accounts,
                abort_every: 0,
            },
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(50),
        );
        let report = engine.process((1..=200).collect());
        assert_eq!(report.committed, 200);
        let total: Value = store.snapshot_latest(accounts).unwrap().values().sum();
        assert_eq!(total, 200 * 10);
    }

    #[test]
    fn aborts_trigger_batch_redo_penalty() {
        let (store, accounts) = setup();
        let clean_events: Vec<u64> = (1..=200).collect();
        let mut clean_engine = TStreamEngine::new(
            Deposits {
                accounts,
                abort_every: 0,
            },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let clean = clean_engine.process(clean_events.clone());

        let (store2, accounts2) = setup();
        let mut aborty_engine = TStreamEngine::new(
            Deposits {
                accounts: accounts2,
                abort_every: 4,
            },
            store2,
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let aborty = aborty_engine.process(clean_events);
        assert!(aborty.aborted > 0);
        assert!(clean.aborted == 0);
        // the redo penalty shows up in the abort bucket of the breakdown
        assert!(
            aborty.breakdown.get(BreakdownBucket::Abort)
                > clean.breakdown.get(BreakdownBucket::Abort)
        );
    }
}
