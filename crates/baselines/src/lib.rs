//! Baseline transactional stream processors reconstructed for comparison.
//!
//! The paper compares MorphStream against three kinds of systems:
//!
//! * **S-Store** — shared state is partitioned; the whole state transaction is
//!   the unit of scheduling and conflicting transactions (same partition) are
//!   executed serially in timestamp order ([`SStoreEngine`]).
//! * **TStream** — transactions are decomposed into per-key operation chains
//!   executed in parallel; aborts are only handled once the whole batch has
//!   been processed, which forces re-processing of the batch
//!   ([`TStreamEngine`]).
//! * **A conventional SPE with external state (Flink + Redis)** — every state
//!   access is a round trip to an external store guarded by a distributed
//!   lock ([`LockedSpeEngine`]); disabling the lock is fast but incorrect.
//!
//! None of these systems is available as a Rust artefact, so they are
//! reconstructed here on top of the same transaction descriptors, the same
//! state store, and the same workloads as MorphStream (see DESIGN.md,
//! substitution 2). All engines implement the push-based
//! [`TxnEngine`](morphstream::TxnEngine) trait — ingest / flush / finish
//! returning a [`RunReport`](morphstream::RunReport) — so one driver loop
//! covers every system; the `process(Vec<Event>)` methods remain as thin
//! convenience wrappers.

#![warn(missing_docs)]

mod harness;
pub mod locked_spe;
pub mod sstore;
pub mod tstream;

pub use locked_spe::LockedSpeEngine;
pub use sstore::SStoreEngine;
pub use tstream::TStreamEngine;

/// Identifies one of the systems under comparison; used by the benchmark
/// harness to label rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemUnderTest {
    /// MorphStream with adaptive scheduling.
    MorphStream,
    /// The TStream reconstruction.
    TStream,
    /// The S-Store reconstruction.
    SStore,
    /// Conventional SPE + external state, with locking.
    LockedSpeWithLocks,
    /// Conventional SPE + external state, without locking (incorrect).
    LockedSpeWithoutLocks,
    /// A MorphStream operator topology (a multi-operator dataflow driven
    /// through the same `TxnEngine` trait as the single-operator systems).
    Topology,
}

impl std::fmt::Display for SystemUnderTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SystemUnderTest::MorphStream => "MorphStream",
            SystemUnderTest::TStream => "TStream",
            SystemUnderTest::SStore => "S-Store",
            SystemUnderTest::LockedSpeWithLocks => "Flink+Redis (w/ locks)",
            SystemUnderTest::LockedSpeWithoutLocks => "Flink+Redis (w/o locks)",
            SystemUnderTest::Topology => "MorphStream topology",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_labels_match_figure_11() {
        assert_eq!(SystemUnderTest::MorphStream.to_string(), "MorphStream");
        assert_eq!(SystemUnderTest::SStore.to_string(), "S-Store");
        assert!(SystemUnderTest::LockedSpeWithLocks
            .to_string()
            .contains("w/ locks"));
        assert!(SystemUnderTest::LockedSpeWithoutLocks
            .to_string()
            .contains("w/o locks"));
    }
}
