//! S-Store reconstruction (Section 2.2).
//!
//! S-Store partitions the shared mutable state and schedules *whole state
//! transactions*: transactions touching the same partition are executed
//! serially in timestamp order, and operations inside a transaction run
//! serially as well. This preserves every dependency type trivially and makes
//! aborts cheap, at the price of very limited parallelism whenever
//! transactions overlap.
//!
//! The reconstruction reuses the TPG planner for dependency information but
//! partitions the graph into *transaction-granularity* units with additional
//! partition-level conflict edges
//! ([`SchedulingUnits::by_partitioned_transaction`]), then executes them with
//! the non-structured driver and eager aborts.

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{
    AbortHandling, BatchHook, EngineConfig, ExplorationStrategy, Granularity, RunReport,
    SchedulingDecision, StreamApp, TxnEngine,
};
use morphstream_executor::execute_batch_with_units;
use morphstream_tpg::{SchedulingUnits, TpgBuilder, TransactionBatch};

use crate::harness::{ExecutedBatch, IngestState};

/// The S-Store baseline engine.
pub struct SStoreEngine<A: StreamApp> {
    app: A,
    store: StateStore,
    config: EngineConfig,
    /// Number of state partitions; defaults to the worker-thread count, as in
    /// the original system where each partition is owned by one site.
    num_partitions: usize,
    state: IngestState<A>,
}

impl<A: StreamApp> SStoreEngine<A> {
    /// Create an S-Store engine for `app` over `store`.
    pub fn new(app: A, store: StateStore, config: EngineConfig) -> Self {
        let num_partitions = config.num_threads.max(1);
        Self {
            app,
            store,
            config,
            num_partitions,
            state: IngestState::new(),
        }
    }

    /// Override the number of state partitions.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.num_partitions = partitions.max(1);
        self
    }

    /// Shared state store handle.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Process a stream of events — convenience wrapper over the push-based
    /// [`TxnEngine`] session.
    pub fn process(&mut self, events: Vec<A::Event>) -> RunReport<A::Output> {
        self.run(events)
    }

    /// Batch executor: whole transactions scheduled per state partition.
    fn execute(
        num_partitions: usize,
    ) -> impl FnMut(TransactionBatch, &StateStore, usize) -> ExecutedBatch {
        let decision = SchedulingDecision {
            exploration: ExplorationStrategy::NonStructured,
            granularity: Granularity::Coarse,
            abort_handling: AbortHandling::Eager,
        };
        let planner = TpgBuilder::new();
        move |batch, store, threads| {
            let tpg = Arc::new(planner.build(batch));
            let units = SchedulingUnits::by_partitioned_transaction(&tpg, num_partitions);
            let report = execute_batch_with_units(tpg, units, decision, store, threads);
            ExecutedBatch {
                redone_ops: report.redone_ops,
                breakdown: report.breakdown.clone(),
                outcomes: report.outcomes,
            }
        }
    }
}

impl<A: StreamApp> TxnEngine for SStoreEngine<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn ingest(&mut self, event: A::Event) {
        // Plain buffer push per event; the executor is only built when the
        // punctuation interval is crossed and a batch must be cut.
        if self.state.buffer_event(event, &self.config) {
            TxnEngine::flush(self);
        }
    }

    fn flush(&mut self) {
        self.state.flush(
            &self.app,
            &self.store,
            &self.config,
            Self::execute(self.num_partitions),
        );
    }

    fn finish(&mut self) -> RunReport<A::Output> {
        TxnEngine::flush(self);
        self.state.finish()
    }

    fn report(&self) -> &RunReport<A::Output> {
        self.state.report()
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.state.set_batch_hook(hook);
    }

    fn set_output_sink(&mut self, sink: Option<morphstream::OutputSink<A::Output>>) {
        self.state.set_output_sink(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::udfs;
    use morphstream::TxnBuilder;
    use morphstream_common::{StateRef, TableId, Value};
    use morphstream_executor::TxnOutcome;

    struct Transfers {
        accounts: TableId,
    }

    impl StreamApp for Transfers {
        type Event = (u64, u64, Value);
        type Output = bool;

        fn state_access(&self, (from, to, amount): &(u64, u64, Value), txn: &mut TxnBuilder) {
            txn.write(self.accounts, *from, udfs::withdraw(*amount));
            txn.write_with_params(
                self.accounts,
                *to,
                vec![StateRef::new(self.accounts, *from)],
                udfs::credit_if_param_at_least(*amount, *amount),
            );
        }

        fn post_process(&self, _e: &(u64, u64, Value), outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    #[test]
    fn sstore_preserves_total_balance_under_transfers() {
        let store = StateStore::new();
        let accounts = store.create_table("accounts", 1_000, false);
        store.preallocate_range(accounts, 32).unwrap();
        let mut engine = SStoreEngine::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(64),
        );
        let events: Vec<(u64, u64, Value)> =
            (0..200).map(|i| (i % 32, (i * 7 + 1) % 32, 5)).collect();
        let report = engine.process(events);
        assert_eq!(report.events(), 200);
        let total: Value = store.snapshot_latest(accounts).unwrap().values().sum();
        assert_eq!(total, 32 * 1_000);
        assert!(report.k_events_per_second() > 0.0);
    }

    #[test]
    fn partition_override_is_respected() {
        let store = StateStore::new();
        let accounts = store.create_table("accounts", 100, false);
        store.preallocate_range(accounts, 8).unwrap();
        let engine =
            SStoreEngine::new(Transfers { accounts }, store, EngineConfig::with_threads(2))
                .with_partitions(1);
        assert_eq!(engine.num_partitions, 1);
    }
}
