//! Per-key version chains.

use morphstream_common::{Timestamp, Value};

/// Identifies the operation that wrote a version, so that aborting that
/// operation can remove exactly the versions it produced. Engines use the
/// batch-global operation id; the initial seed version uses [`INITIAL_WRITER`].
pub type WriterId = u64;

/// Writer id of the version seeded when a key is created.
pub const INITIAL_WRITER: WriterId = u64::MAX;

/// One version of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// Event timestamp of the writing operation.
    pub ts: Timestamp,
    /// Statement index of the writing operation inside its transaction. Used
    /// to order the reads and writes of operations that share a timestamp
    /// (i.e. belong to the same state transaction).
    pub stmt: u32,
    /// Operation that produced the version.
    pub writer: WriterId,
    /// The stored value.
    pub value: Value,
}

impl Version {
    fn order_key(&self) -> (Timestamp, u32) {
        (self.ts, self.stmt)
    }
}

/// An append-mostly, timestamp-ordered chain of versions for a single key.
///
/// The chain keeps versions sorted by `(ts, stmt)`. Appends at the tail (the
/// common case under in-order execution) are O(1); out-of-order inserts —
/// which happen under speculative execution — fall back to a binary-search
/// insert.
#[derive(Debug, Clone, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Chain holding a single initial version at timestamp 0.
    pub fn with_initial(value: Value) -> Self {
        Self {
            versions: vec![Version {
                ts: 0,
                stmt: 0,
                writer: INITIAL_WRITER,
                value,
            }],
        }
    }

    /// Number of stored versions.
    #[inline]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when the chain holds no versions at all (only possible after
    /// explicit truncation of an uninitialised chain).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// All versions in timestamp order.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Insert a version, keeping timestamp order.
    pub fn insert(&mut self, version: Version) {
        match self.versions.last() {
            Some(last) if last.order_key() <= version.order_key() => {
                self.versions.push(version);
            }
            None => self.versions.push(version),
            Some(_) => {
                let idx = self
                    .versions
                    .partition_point(|v| v.order_key() <= version.order_key());
                self.versions.insert(idx, version);
            }
        }
    }

    /// Latest version strictly *before* the reader position `(ts, stmt)`.
    ///
    /// This is the visibility rule of the multi-version table: an operation
    /// with timestamp `ts` and statement index `stmt` sees the newest version
    /// produced by any earlier-timestamped operation, or by an earlier
    /// statement of its own transaction.
    pub fn read_before(&self, ts: Timestamp, stmt: u32) -> Option<&Version> {
        let idx = self
            .versions
            .partition_point(|v| v.order_key() < (ts, stmt));
        if idx == 0 {
            None
        } else {
            Some(&self.versions[idx - 1])
        }
    }

    /// Latest committed version overall.
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Every version whose timestamp lies in the window `[lo, hi]`, in
    /// timestamp order. Used by windowed reads (Section 6.5.1).
    pub fn window(&self, lo: Timestamp, hi: Timestamp) -> Vec<Version> {
        self.versions
            .iter()
            .filter(|v| v.ts >= lo && v.ts <= hi)
            .copied()
            .collect()
    }

    /// Remove every version written by `writer`. Returns how many versions
    /// were removed. This implements abort rollback: the latest remaining
    /// version is automatically the latest version prior to the aborted
    /// operation.
    pub fn remove_writer(&mut self, writer: WriterId) -> usize {
        let before = self.versions.len();
        self.versions.retain(|v| v.writer != writer);
        before - self.versions.len()
    }

    /// Remove the versions written by `writer` at exactly `ts`. This is the
    /// abort rollback engines should use when writer ids are recycled across
    /// batches (batch-local operation ids): scoping the removal to the
    /// aborting transaction's own timestamp guarantees a version that
    /// survived from an earlier batch can never be collaterally deleted by a
    /// later abort that happens to reuse the writer id.
    pub fn remove_writer_at(&mut self, writer: WriterId, ts: Timestamp) -> usize {
        let before = self.versions.len();
        self.versions.retain(|v| v.writer != writer || v.ts != ts);
        before - self.versions.len()
    }

    /// Drop every version except the newest one at or before `ts`, plus any
    /// versions newer than `ts`. This is the after-batch clean-up used when
    /// `reclaim_after_batch` is enabled (Figure 17).
    pub fn truncate_before(&mut self, ts: Timestamp) {
        let keep_from = self
            .versions
            .partition_point(|v| v.order_key() <= (ts, u32::MAX));
        if keep_from > 1 {
            self.versions.drain(..keep_from - 1);
        }
    }

    /// Approximate bytes retained by this chain.
    pub fn bytes_retained(&self) -> u64 {
        (self.versions.capacity() * std::mem::size_of::<Version>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ts: Timestamp, stmt: u32, writer: WriterId, value: Value) -> Version {
        Version {
            ts,
            stmt,
            writer,
            value,
        }
    }

    #[test]
    fn initial_chain_has_seed_version() {
        let chain = VersionChain::with_initial(100);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.latest().unwrap().value, 100);
        assert_eq!(chain.latest().unwrap().writer, INITIAL_WRITER);
    }

    #[test]
    fn inserts_keep_timestamp_order_even_out_of_order() {
        let mut chain = VersionChain::with_initial(0);
        chain.insert(v(5, 0, 1, 50));
        chain.insert(v(3, 0, 2, 30));
        chain.insert(v(7, 0, 3, 70));
        chain.insert(v(3, 1, 4, 31));
        let ts: Vec<(Timestamp, u32)> = chain.versions().iter().map(|x| (x.ts, x.stmt)).collect();
        assert_eq!(ts, vec![(0, 0), (3, 0), (3, 1), (5, 0), (7, 0)]);
    }

    #[test]
    fn read_before_sees_latest_strictly_prior_version() {
        let mut chain = VersionChain::with_initial(0);
        chain.insert(v(10, 0, 1, 100));
        chain.insert(v(20, 0, 2, 200));
        assert_eq!(chain.read_before(15, 0).unwrap().value, 100);
        assert_eq!(chain.read_before(20, 0).unwrap().value, 100);
        assert_eq!(chain.read_before(21, 0).unwrap().value, 200);
        assert_eq!(chain.read_before(0, 0), None);
    }

    #[test]
    fn same_timestamp_visibility_follows_statement_order() {
        let mut chain = VersionChain::with_initial(1);
        chain.insert(v(10, 0, 1, 11));
        chain.insert(v(10, 2, 2, 13));
        // statement 1 of the same transaction sees statement 0's write.
        assert_eq!(chain.read_before(10, 1).unwrap().value, 11);
        // statement 3 sees statement 2's write.
        assert_eq!(chain.read_before(10, 3).unwrap().value, 13);
        // statement 0 sees only the initial version.
        assert_eq!(chain.read_before(10, 0).unwrap().value, 1);
    }

    #[test]
    fn window_returns_only_in_range_versions() {
        let mut chain = VersionChain::with_initial(0);
        for ts in [5u64, 10, 15, 20, 25] {
            chain.insert(v(ts, 0, ts, ts as Value));
        }
        let win: Vec<Value> = chain.window(10, 20).iter().map(|x| x.value).collect();
        assert_eq!(win, vec![10, 15, 20]);
        assert!(chain.window(100, 200).is_empty());
    }

    #[test]
    fn removing_a_writer_restores_prior_visibility() {
        let mut chain = VersionChain::with_initial(0);
        chain.insert(v(10, 0, 1, 100));
        chain.insert(v(20, 0, 2, 200));
        assert_eq!(chain.read_before(30, 0).unwrap().value, 200);
        assert_eq!(chain.remove_writer(2), 1);
        assert_eq!(chain.read_before(30, 0).unwrap().value, 100);
        // removing a non-existent writer is a no-op
        assert_eq!(chain.remove_writer(99), 0);
    }

    #[test]
    fn truncate_before_keeps_latest_visible_version() {
        let mut chain = VersionChain::with_initial(0);
        chain.insert(v(10, 0, 1, 100));
        chain.insert(v(20, 0, 2, 200));
        chain.insert(v(30, 0, 3, 300));
        chain.truncate_before(25);
        // versions 0 and 10 dropped; 20 kept (latest <= 25); 30 kept (future).
        let ts: Vec<Timestamp> = chain.versions().iter().map(|x| x.ts).collect();
        assert_eq!(ts, vec![20, 30]);
        assert_eq!(chain.read_before(26, 0).unwrap().value, 200);
    }

    #[test]
    fn bytes_retained_grows_with_versions() {
        let mut chain = VersionChain::with_initial(0);
        let before = chain.bytes_retained();
        for ts in 1..100u64 {
            chain.insert(v(ts, 0, ts, 1));
        }
        assert!(chain.bytes_retained() > before);
    }
}
