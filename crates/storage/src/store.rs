//! The collection of named tables an application operates on.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use morphstream_common::error::Result;
use morphstream_common::{Key, MorphError, TableId, Timestamp, Value};

use crate::table::MvTable;
use crate::version::WriterId;

/// The shared mutable state of a streaming application: a set of named
/// multi-version tables. Cloning a `StateStore` is cheap (it is an `Arc`
/// inside) and shares the underlying tables, which is how the execution
/// workers all see the same state.
#[derive(Clone)]
pub struct StateStore {
    inner: Arc<Inner>,
}

struct Inner {
    tables: RwLock<Vec<Arc<MvTable>>>,
    by_name: RwLock<HashMap<String, TableId>>,
}

impl StateStore {
    /// Empty store.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                tables: RwLock::new(Vec::new()),
                by_name: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Create a table and return its id. `default_value` seeds newly created
    /// keys; `auto_create` allows keys to materialise on first access.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        default_value: Value,
        auto_create: bool,
    ) -> TableId {
        let name = name.into();
        let mut tables = self.inner.tables.write();
        let mut by_name = self.inner.by_name.write();
        if let Some(existing) = by_name.get(&name) {
            return *existing;
        }
        let id = TableId(tables.len() as u32);
        tables.push(Arc::new(MvTable::new(
            id,
            name.clone(),
            default_value,
            auto_create,
        )));
        by_name.insert(name, id);
        id
    }

    /// Opaque identity of the underlying shared storage: two handles return
    /// the same id iff they are clones of one store (share tables). Lets
    /// multi-store consumers — e.g. a topology whose operators may or may not
    /// share state — deduplicate stores before summing per-store metrics.
    pub fn instance_id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Look a table up by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner.by_name.read().get(name).copied()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.inner.tables.read().len()
    }

    /// Get a handle on a table.
    pub fn table(&self, id: TableId) -> Result<Arc<MvTable>> {
        self.inner
            .tables
            .read()
            .get(id.index())
            .cloned()
            .ok_or(MorphError::UnknownTable(id.0))
    }

    /// Pre-allocate the dense key range `[0, n)` of `table`.
    pub fn preallocate_range(&self, table: TableId, n: u64) -> Result<()> {
        self.table(table)?.preallocate_range(n);
        Ok(())
    }

    /// Seed a single key with an initial value.
    pub fn seed(&self, table: TableId, key: Key, value: Value) -> Result<()> {
        self.table(table)?.seed(key, value);
        Ok(())
    }

    /// Read the newest version of `(table, key)` visible at `(ts, stmt)`.
    pub fn read_before(&self, table: TableId, key: Key, ts: Timestamp, stmt: u32) -> Result<Value> {
        self.table(table)?.read_before(key, ts, stmt)
    }

    /// Latest value of `(table, key)`.
    pub fn read_latest(&self, table: TableId, key: Key) -> Result<Value> {
        self.table(table)?.read_latest(key)
    }

    /// Append a version of `(table, key)`.
    pub fn write(
        &self,
        table: TableId,
        key: Key,
        ts: Timestamp,
        stmt: u32,
        writer: WriterId,
        value: Value,
    ) -> Result<()> {
        self.table(table)?.write(key, ts, stmt, writer, value)
    }

    /// Remove the versions of `(table, key)` written by `writer` at exactly
    /// `ts` — the abort rollback for engines whose writer ids are batch-local
    /// and therefore recycled across batches. There is deliberately no
    /// unscoped store-level rollback: removing every version by a writer id
    /// regardless of timestamp deletes committed versions surviving from
    /// earlier batches under a recycled id (the cross-batch data-loss bug
    /// this API replaced). The unscoped primitive remains available on
    /// [`MvTable`](crate::MvTable) for tests and single-batch tooling.
    pub fn rollback_writer_at(
        &self,
        table: TableId,
        key: Key,
        writer: WriterId,
        ts: Timestamp,
    ) -> Result<usize> {
        Ok(self.table(table)?.rollback_writer_at(key, writer, ts))
    }

    /// Values of versions of `(table, key)` inside the window `[lo, hi]`.
    pub fn window_values(
        &self,
        table: TableId,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Result<Vec<Value>> {
        Ok(self
            .table(table)?
            .window(key, lo, hi)?
            .into_iter()
            .map(|v| v.value)
            .collect())
    }

    /// Reclaim old versions of every table (keep only the newest visible at
    /// `ts` plus anything newer). Pinned tables are skipped (see
    /// [`StateStore::pin_table`]).
    pub fn truncate_before(&self, ts: Timestamp) {
        for table in self.inner.tables.read().iter() {
            table.truncate_before(ts);
        }
    }

    /// Reclaim old versions of exactly `tables` at watermark `ts`, skipping
    /// pinned tables. This is the per-table-scoped reclamation used by
    /// engines whose store is shared with sibling operators of a topology:
    /// every operator stamps its own timestamp domain, so a watermark is only
    /// meaningful for the tables *that operator writes* — truncating the
    /// whole store with it could collapse versions a sibling still needs.
    pub fn truncate_tables_before(&self, tables: &[TableId], ts: Timestamp) {
        for id in tables {
            if let Ok(table) = self.table(*id) {
                table.truncate_before(ts);
            }
        }
    }

    /// Permanently exempt `table` from version reclamation. The engine pins
    /// every table it sees serving windowed accesses, so trailing windows
    /// keep their history even with after-batch reclamation enabled.
    pub fn pin_table(&self, table: TableId) -> Result<()> {
        self.table(table)?.pin();
        Ok(())
    }

    /// Total retained versions across all tables.
    pub fn version_count(&self) -> u64 {
        self.inner
            .tables
            .read()
            .iter()
            .map(|t| t.version_count())
            .sum()
    }

    /// Approximate bytes retained across all tables.
    pub fn bytes_retained(&self) -> u64 {
        self.inner
            .tables
            .read()
            .iter()
            .map(|t| t.bytes_retained())
            .sum()
    }

    /// Latest value of every key of `table`, for verification.
    pub fn snapshot_latest(&self, table: TableId) -> Result<HashMap<Key, Value>> {
        Ok(self.table(table)?.snapshot_latest())
    }

    /// Explicitly mark `tables` dirty for the next checkpoint — used by
    /// engines that already track per-batch written tables, so a checkpoint
    /// never misses a table even if a write path bypasses the store handle.
    pub fn mark_tables_dirty(&self, tables: &[TableId]) {
        for id in tables {
            if let Ok(table) = self.table(*id) {
                table.mark_dirty();
            }
        }
    }

    /// Collect and clear the dirty flags of every table, returning the ids
    /// (sorted) whose visible state may have changed since the last call —
    /// the set an incremental checkpoint must snapshot.
    pub fn take_dirty_tables(&self) -> Vec<TableId> {
        self.inner
            .tables
            .read()
            .iter()
            .filter(|t| t.take_dirty())
            .map(|t| t.id())
            .collect()
    }

    /// Deterministic FNV-1a digest of the latest committed value of every key
    /// of every table, in table-id / key order. Two stores hold identical
    /// visible state iff their digests match, so tests can compare runs
    /// across thread counts and pipeline modes without shipping snapshots
    /// around.
    pub fn state_digest(&self) -> u64 {
        let mut hash = morphstream_common::hash::Fnv1a::new();
        for table in self.inner.tables.read().iter() {
            let mut entries: Vec<(Key, Value)> = table.snapshot_latest().into_iter().collect();
            entries.sort_unstable_by_key(|(k, _)| *k);
            hash.update(&table.id().0.to_le_bytes());
            for (key, value) in entries {
                hash.update(&key.to_le_bytes());
                hash.update(&value.to_le_bytes());
            }
        }
        hash.finish()
    }
}

impl Default for StateStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateStore")
            .field("tables", &self.table_count())
            .field("versions", &self.version_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creating_the_same_table_twice_returns_the_same_id() {
        let store = StateStore::new();
        let a = store.create_table("accounts", 0, false);
        let b = store.create_table("accounts", 0, false);
        assert_eq!(a, b);
        assert_eq!(store.table_count(), 1);
        assert_eq!(store.table_id("accounts"), Some(a));
        assert_eq!(store.table_id("missing"), None);
    }

    #[test]
    fn reads_writes_and_rollbacks_round_trip_through_the_store() {
        let store = StateStore::new();
        let t = store.create_table("t", 10, false);
        store.preallocate_range(t, 4).unwrap();
        store.write(t, 1, 5, 0, 99, 55).unwrap();
        assert_eq!(store.read_before(t, 1, 6, 0).unwrap(), 55);
        assert_eq!(store.read_before(t, 1, 5, 0).unwrap(), 10);
        assert_eq!(store.rollback_writer_at(t, 1, 99, 5).unwrap(), 1);
        assert_eq!(store.read_latest(t, 1).unwrap(), 10);
    }

    #[test]
    fn unknown_table_is_reported() {
        let store = StateStore::new();
        assert!(matches!(
            store.read_latest(TableId(3), 0),
            Err(MorphError::UnknownTable(3))
        ));
    }

    #[test]
    fn window_values_and_truncation_work_store_wide() {
        let store = StateStore::new();
        let t = store.create_table("t", 0, false);
        store.preallocate_range(t, 2).unwrap();
        for ts in [1u64, 2, 3, 4, 5] {
            store.write(t, 0, ts, 0, ts, ts as Value).unwrap();
        }
        assert_eq!(store.window_values(t, 0, 2, 4).unwrap(), vec![2, 3, 4]);
        let before = store.version_count();
        store.truncate_before(5);
        assert!(store.version_count() < before);
        assert_eq!(store.read_latest(t, 0).unwrap(), 5);
    }

    #[test]
    fn per_table_truncation_scopes_reclamation_and_respects_pins() {
        let store = StateStore::new();
        let a = store.create_table("a", 0, false);
        let b = store.create_table("b", 0, false);
        store.preallocate_range(a, 1).unwrap();
        store.preallocate_range(b, 1).unwrap();
        for ts in 1..=10u64 {
            store.write(a, 0, ts, 0, ts, ts as Value).unwrap();
            store.write(b, 0, ts, 0, ts, ts as Value).unwrap();
        }
        let b_versions = store.table(b).unwrap().version_count();
        // truncating only `a` leaves `b`'s history intact
        store.truncate_tables_before(&[a], 10);
        assert_eq!(store.table(b).unwrap().version_count(), b_versions);
        assert!(store.table(a).unwrap().version_count() < b_versions);
        // a pinned table survives even a targeted truncation
        store.pin_table(b).unwrap();
        store.truncate_tables_before(&[b], 10);
        assert_eq!(store.table(b).unwrap().version_count(), b_versions);
        assert_eq!(store.window_values(b, 0, 1, 10).unwrap().len(), 10);
        // unknown table ids are ignored by the targeted call, not an error
        store.truncate_tables_before(&[TableId(99)], 10);
        assert!(store.pin_table(TableId(99)).is_err());
    }

    #[test]
    fn clones_share_underlying_state() {
        let store = StateStore::new();
        let t = store.create_table("t", 0, false);
        store.preallocate_range(t, 1).unwrap();
        let clone = store.clone();
        clone.write(t, 0, 1, 0, 1, 42).unwrap();
        assert_eq!(store.read_latest(t, 0).unwrap(), 42);
        assert!(store.bytes_retained() > 0);
    }

    #[test]
    fn state_digest_distinguishes_states_and_is_stable() {
        let a = StateStore::new();
        let t = a.create_table("t", 0, false);
        a.preallocate_range(t, 4).unwrap();
        let b = StateStore::new();
        let t2 = b.create_table("t", 0, false);
        b.preallocate_range(t2, 4).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());

        a.write(t, 1, 5, 0, 1, 77).unwrap();
        assert_ne!(a.state_digest(), b.state_digest());
        b.write(t2, 1, 9, 0, 2, 77).unwrap();
        // same visible values → same digest, regardless of version history
        assert_eq!(a.state_digest(), b.state_digest());
        // repeated evaluation is stable
        assert_eq!(a.state_digest(), a.state_digest());
    }

    #[test]
    fn dirty_tables_are_collected_once_and_in_id_order() {
        let store = StateStore::new();
        let a = store.create_table("a", 0, false);
        let b = store.create_table("b", 0, false);
        let c = store.create_table("c", 0, false);
        store.preallocate_range(a, 2).unwrap();
        store.preallocate_range(b, 2).unwrap();
        store.preallocate_range(c, 2).unwrap();
        // creation dirties everything; take clears
        assert_eq!(store.take_dirty_tables(), vec![a, b, c]);
        assert!(store.take_dirty_tables().is_empty());
        // only the written table comes back
        store.write(b, 0, 1, 0, 1, 5).unwrap();
        assert_eq!(store.take_dirty_tables(), vec![b]);
        // explicit marking for engine-tracked writes
        store.mark_tables_dirty(&[c, TableId(99)]);
        assert_eq!(store.take_dirty_tables(), vec![c]);
    }

    #[test]
    fn seeding_through_the_store_sets_initial_values() {
        let store = StateStore::new();
        let t = store.create_table("balances", 0, false);
        store.seed(t, 5, 500).unwrap();
        assert_eq!(store.read_latest(t, 5).unwrap(), 500);
        let snap = store.snapshot_latest(t).unwrap();
        assert_eq!(snap[&5], 500);
    }
}
