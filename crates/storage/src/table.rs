//! A sharded multi-version table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use morphstream_common::error::Result;
use morphstream_common::{Key, MorphError, StateRef, TableId, Timestamp, Value};

use crate::version::{Version, VersionChain, WriterId};

/// Number of lock shards per table. Chosen to comfortably exceed typical
/// worker-thread counts so that uncontended keys rarely share a lock.
const SHARDS: usize = 64;

#[derive(Default)]
struct Shard {
    chains: HashMap<Key, VersionChain>,
}

/// A multi-version table: one version chain per key, sharded for concurrent
/// access from the execution workers.
pub struct MvTable {
    id: TableId,
    name: String,
    default_value: Value,
    auto_create: bool,
    shards: Vec<RwLock<Shard>>,
    /// Total number of versions currently retained, across all shards.
    version_count: AtomicU64,
    /// Pinned tables are exempt from [`MvTable::truncate_before`]: windowed
    /// reads aggregate historical versions, so once a table serves windows
    /// its history must survive after-batch reclamation.
    pinned: std::sync::atomic::AtomicBool,
    /// Whether the table's *visible* state may have changed since the flag
    /// was last taken — the incremental-checkpoint cue. A new table starts
    /// dirty (it has never been captured by a checkpoint); afterwards the
    /// flag is set by every path that can change `snapshot_latest` (seed,
    /// preallocate, write, and the auto-create branch of reads); truncation
    /// keeps the latest version per key so it does not dirty.
    dirty: std::sync::atomic::AtomicBool,
}

impl MvTable {
    /// Create a table. `auto_create` controls whether writes/reads to a key
    /// that was never pre-allocated implicitly create it with
    /// `default_value` (workloads such as OSED register new words on the fly,
    /// while the ledger tables are fully pre-allocated).
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        default_value: Value,
        auto_create: bool,
    ) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect();
        Self {
            id,
            name: name.into(),
            default_value,
            auto_create,
            shards,
            version_count: AtomicU64::new(0),
            pinned: std::sync::atomic::AtomicBool::new(false),
            dirty: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Exempt this table from [`MvTable::truncate_before`] permanently. The
    /// engine pins every table serving windowed accesses: reclamation keeps
    /// only the newest version at the reclaiming watermark, which would
    /// silently empty trailing windows.
    pub fn pin(&self) {
        self.pinned.store(true, Ordering::Relaxed);
    }

    /// Whether this table is exempt from truncation.
    pub fn is_pinned(&self) -> bool {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Table id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value newly created keys start at.
    pub fn default_value(&self) -> Value {
        self.default_value
    }

    /// Whether keys materialise on first access.
    pub fn is_auto_create(&self) -> bool {
        self.auto_create
    }

    /// Mark the table's visible state as changed since the last checkpoint.
    pub fn mark_dirty(&self) {
        // Check-before-store keeps the steady state read-only: repeated
        // writes to an already-dirty table do not bounce the cache line.
        if !self.dirty.load(Ordering::Relaxed) {
            self.dirty.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the visible state may have changed since the flag was taken.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Clear the dirty flag, returning whether it was set — one checkpoint's
    /// "does this table need a new snapshot section" test.
    pub fn take_dirty(&self) -> bool {
        self.dirty.swap(false, Ordering::Relaxed)
    }

    #[inline]
    fn shard_for(&self, key: Key) -> &RwLock<Shard> {
        // Fibonacci hashing spreads dense key ranges across shards.
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize;
        &self.shards[h % SHARDS]
    }

    fn state_ref(&self, key: Key) -> StateRef {
        StateRef::new(self.id, key)
    }

    /// Pre-allocate `keys` with the table's default value.
    pub fn preallocate<I: IntoIterator<Item = Key>>(&self, keys: I) {
        let mut created = 0u64;
        for key in keys {
            let mut shard = self.shard_for(key).write();
            shard.chains.entry(key).or_insert_with(|| {
                created += 1;
                VersionChain::with_initial(self.default_value)
            });
        }
        self.version_count.fetch_add(created, Ordering::Relaxed);
        if created > 0 {
            self.mark_dirty();
        }
    }

    /// Pre-allocate the dense key range `[0, n)`.
    pub fn preallocate_range(&self, n: u64) {
        self.preallocate(0..n);
    }

    /// Set the value of `key` at timestamp 0, creating it if necessary. Used
    /// to seed initial balances before a run.
    pub fn seed(&self, key: Key, value: Value) {
        let mut shard = self.shard_for(key).write();
        let prev = shard.chains.insert(key, VersionChain::with_initial(value));
        if prev.is_none() {
            self.version_count.fetch_add(1, Ordering::Relaxed);
        } else if let Some(prev) = prev {
            // replacing an existing chain: adjust the version count.
            let removed = prev.len() as u64;
            self.version_count.fetch_sub(removed, Ordering::Relaxed);
            self.version_count.fetch_add(1, Ordering::Relaxed);
        }
        self.mark_dirty();
    }

    /// Whether `key` exists in the table.
    pub fn contains(&self, key: Key) -> bool {
        self.shard_for(key).read().chains.contains_key(&key)
    }

    /// Number of keys in the table.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().chains.len()).sum()
    }

    /// Read the newest version visible to an operation at `(ts, stmt)`.
    pub fn read_before(&self, key: Key, ts: Timestamp, stmt: u32) -> Result<Value> {
        {
            let shard = self.shard_for(key).read();
            if let Some(chain) = shard.chains.get(&key) {
                return chain.read_before(ts, stmt).map(|v| v.value).ok_or(
                    MorphError::NoVisibleVersion {
                        state: self.state_ref(key),
                        at: ts,
                    },
                );
            }
        }
        if self.auto_create {
            self.preallocate(std::iter::once(key));
            Ok(self.default_value)
        } else {
            Err(MorphError::UnknownKey {
                state: self.state_ref(key),
            })
        }
    }

    /// Read the latest value of `key` regardless of timestamp.
    pub fn read_latest(&self, key: Key) -> Result<Value> {
        let shard = self.shard_for(key).read();
        match shard.chains.get(&key) {
            Some(chain) => chain
                .latest()
                .map(|v| v.value)
                .ok_or(MorphError::NoVisibleVersion {
                    state: self.state_ref(key),
                    at: Timestamp::MAX,
                }),
            None if self.auto_create => Ok(self.default_value),
            None => Err(MorphError::UnknownKey {
                state: self.state_ref(key),
            }),
        }
    }

    /// Append a new version of `key`.
    pub fn write(
        &self,
        key: Key,
        ts: Timestamp,
        stmt: u32,
        writer: WriterId,
        value: Value,
    ) -> Result<()> {
        let mut shard = self.shard_for(key).write();
        let chain = match shard.chains.get_mut(&key) {
            Some(chain) => chain,
            None if self.auto_create => {
                self.version_count.fetch_add(1, Ordering::Relaxed);
                shard
                    .chains
                    .entry(key)
                    .or_insert_with(|| VersionChain::with_initial(self.default_value))
            }
            None => {
                return Err(MorphError::UnknownKey {
                    state: self.state_ref(key),
                })
            }
        };
        chain.insert(Version {
            ts,
            stmt,
            writer,
            value,
        });
        self.version_count.fetch_add(1, Ordering::Relaxed);
        self.mark_dirty();
        Ok(())
    }

    /// Remove every version of `key` written by `writer`, regardless of
    /// timestamp. **Engines must not use this for abort rollback** when
    /// writer ids are recycled across batches (batch-local op ids): it would
    /// delete committed versions surviving from earlier batches under a
    /// recycled id. Use [`MvTable::rollback_writer_at`] instead; this
    /// unscoped primitive exists for tests and single-batch tooling.
    pub fn rollback_writer(&self, key: Key, writer: WriterId) -> usize {
        let mut shard = self.shard_for(key).write();
        if let Some(chain) = shard.chains.get_mut(&key) {
            let removed = chain.remove_writer(writer);
            self.version_count
                .fetch_sub(removed as u64, Ordering::Relaxed);
            removed
        } else {
            0
        }
    }

    /// Remove the versions of `key` written by `writer` at exactly `ts` (see
    /// [`VersionChain::remove_writer_at`] for why aborts must scope their
    /// rollback when writer ids are recycled across batches).
    pub fn rollback_writer_at(&self, key: Key, writer: WriterId, ts: Timestamp) -> usize {
        let mut shard = self.shard_for(key).write();
        if let Some(chain) = shard.chains.get_mut(&key) {
            let removed = chain.remove_writer_at(writer, ts);
            self.version_count
                .fetch_sub(removed as u64, Ordering::Relaxed);
            removed
        } else {
            0
        }
    }

    /// Versions of `key` whose timestamps fall inside `[lo, hi]`.
    pub fn window(&self, key: Key, lo: Timestamp, hi: Timestamp) -> Result<Vec<Version>> {
        let shard = self.shard_for(key).read();
        match shard.chains.get(&key) {
            Some(chain) => Ok(chain.window(lo, hi)),
            None if self.auto_create => Ok(Vec::new()),
            None => Err(MorphError::UnknownKey {
                state: self.state_ref(key),
            }),
        }
    }

    /// Drop versions older than the newest one at or before `ts`, for every
    /// key (the after-batch reclamation toggle). A no-op on pinned tables
    /// (see [`MvTable::pin`]).
    pub fn truncate_before(&self, ts: Timestamp) {
        if self.is_pinned() {
            return;
        }
        for shard in &self.shards {
            let mut shard = shard.write();
            for chain in shard.chains.values_mut() {
                let before = chain.len() as u64;
                chain.truncate_before(ts);
                let removed = before - chain.len() as u64;
                if removed > 0 {
                    self.version_count.fetch_sub(removed, Ordering::Relaxed);
                }
            }
        }
    }

    /// Total number of retained versions.
    pub fn version_count(&self) -> u64 {
        self.version_count.load(Ordering::Relaxed)
    }

    /// Approximate bytes retained by the table's version chains.
    pub fn bytes_retained(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .chains
                    .values()
                    .map(|c| c.bytes_retained() + std::mem::size_of::<Key>() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Latest value of every key — used by tests to compare engines against a
    /// sequential oracle.
    pub fn snapshot_latest(&self) -> HashMap<Key, Value> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (k, chain) in &shard.chains {
                if let Some(v) = chain.latest() {
                    out.insert(*k, v.value);
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MvTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvTable")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("keys", &self.key_count())
            .field("versions", &self.version_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MvTable {
        let t = MvTable::new(TableId(0), "accounts", 1000, false);
        t.preallocate_range(16);
        t
    }

    #[test]
    fn preallocated_keys_start_at_default() {
        let t = table();
        assert_eq!(t.key_count(), 16);
        assert_eq!(t.read_latest(3).unwrap(), 1000);
        assert_eq!(t.read_before(3, 5, 0).unwrap(), 1000);
    }

    #[test]
    fn unknown_key_errors_without_auto_create() {
        let t = table();
        assert!(matches!(
            t.read_latest(999),
            Err(MorphError::UnknownKey { .. })
        ));
        assert!(t.write(999, 1, 0, 7, 5).is_err());
    }

    #[test]
    fn auto_create_tables_materialise_keys_on_demand() {
        let t = MvTable::new(TableId(1), "words", 0, true);
        assert_eq!(t.read_latest(42).unwrap(), 0);
        t.write(42, 3, 0, 1, 7).unwrap();
        assert_eq!(t.read_latest(42).unwrap(), 7);
        assert!(t.contains(42));
    }

    #[test]
    fn writes_are_visible_to_later_timestamps_only() {
        let t = table();
        t.write(5, 10, 0, 100, 1234).unwrap();
        assert_eq!(t.read_before(5, 10, 0).unwrap(), 1000);
        assert_eq!(t.read_before(5, 11, 0).unwrap(), 1234);
        assert_eq!(t.read_latest(5).unwrap(), 1234);
    }

    #[test]
    fn rollback_removes_only_the_writers_versions() {
        let t = table();
        t.write(5, 10, 0, 100, 1111).unwrap();
        t.write(5, 20, 0, 200, 2222).unwrap();
        assert_eq!(t.rollback_writer(5, 200), 1);
        assert_eq!(t.read_latest(5).unwrap(), 1111);
        assert_eq!(t.rollback_writer(5, 999), 0);
    }

    #[test]
    fn scoped_rollback_spares_recycled_writer_ids_from_earlier_batches() {
        let t = table();
        // Batch 1: op #3 commits a version; after-batch reclamation may leave
        // it as the key's only version.
        t.write(5, 10, 0, 3, 1111).unwrap();
        // Batch 2: a different transaction, same recycled op id #3, writes at
        // its own timestamp and then aborts.
        t.write(5, 20, 0, 3, 2222).unwrap();
        assert_eq!(t.rollback_writer_at(5, 3, 20), 1);
        // The committed version from batch 1 survives the rollback — the
        // unscoped rollback_writer would have deleted it too.
        assert_eq!(t.read_latest(5).unwrap(), 1111);
        assert_eq!(t.rollback_writer_at(5, 3, 999), 0);
        assert_eq!(t.rollback_writer_at(5, 999, 10), 0);
    }

    #[test]
    fn window_reads_return_versions_in_range() {
        let t = table();
        for ts in [10u64, 20, 30, 40] {
            t.write(7, ts, 0, ts, ts as Value).unwrap();
        }
        let versions = t.window(7, 15, 35).unwrap();
        let values: Vec<Value> = versions.iter().map(|v| v.value).collect();
        assert_eq!(values, vec![20, 30]);
    }

    #[test]
    fn truncation_reduces_version_count_but_keeps_latest() {
        let t = table();
        for ts in 1..=50u64 {
            t.write(2, ts, 0, ts, ts as Value).unwrap();
        }
        let before = t.version_count();
        t.truncate_before(50);
        assert!(t.version_count() < before);
        assert_eq!(t.read_latest(2).unwrap(), 50);
    }

    #[test]
    fn pinned_tables_are_exempt_from_truncation() {
        let t = table();
        for ts in 1..=20u64 {
            t.write(3, ts, 0, ts, ts as Value).unwrap();
        }
        assert!(!t.is_pinned());
        t.pin();
        assert!(t.is_pinned());
        let before = t.version_count();
        t.truncate_before(20);
        assert_eq!(t.version_count(), before);
        // the full window history survives
        assert_eq!(t.window(3, 1, 20).unwrap().len(), 20);
    }

    #[test]
    fn dirty_tracks_visible_state_changes_only() {
        // a new table is dirty by definition: never checkpointed
        let t = MvTable::new(TableId(0), "accounts", 1000, false);
        assert!(t.is_dirty());
        t.preallocate_range(4);
        assert!(t.take_dirty());
        assert!(!t.is_dirty());
        // preallocating existing keys changes nothing visible
        t.preallocate_range(4);
        assert!(!t.is_dirty());
        t.write(1, 5, 0, 1, 7).unwrap();
        assert!(t.take_dirty());
        // truncation keeps the latest version per key: stays clean
        t.truncate_before(5);
        assert!(!t.is_dirty());
        t.seed(2, 9);
        assert!(t.take_dirty());
        // an auto-created read materialises a key → dirty
        let auto = MvTable::new(TableId(1), "words", 0, true);
        auto.take_dirty();
        assert_eq!(auto.read_before(3, 1, 0).unwrap(), 0);
        assert!(auto.is_dirty());
    }

    #[test]
    fn seed_overrides_initial_value() {
        let t = table();
        t.seed(9, 77);
        assert_eq!(t.read_latest(9).unwrap(), 77);
        assert_eq!(t.read_before(9, 1, 0).unwrap(), 77);
    }

    #[test]
    fn snapshot_reflects_latest_values() {
        let t = table();
        t.write(0, 5, 0, 1, -5).unwrap();
        t.write(1, 6, 0, 2, 42).unwrap();
        let snap = t.snapshot_latest();
        assert_eq!(snap[&0], -5);
        assert_eq!(snap[&1], 42);
        assert_eq!(snap[&2], 1000);
    }

    #[test]
    fn bytes_and_version_counts_track_growth() {
        let t = table();
        let (b0, v0) = (t.bytes_retained(), t.version_count());
        for ts in 1..200u64 {
            t.write(ts % 16, ts, 0, ts, 1).unwrap();
        }
        assert!(t.bytes_retained() > b0);
        assert_eq!(t.version_count(), v0 + 199);
    }

    #[test]
    fn concurrent_writes_to_distinct_keys_do_not_lose_versions() {
        let t = std::sync::Arc::new(MvTable::new(TableId(2), "c", 0, false));
        t.preallocate_range(64);
        std::thread::scope(|s| {
            for thread in 0..8u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = (thread * 8 + i % 8) % 64;
                        t.write(key, thread * 1000 + i + 1, 0, thread * 1000 + i, 1)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(t.version_count(), 64 + 8 * 100);
    }
}
