//! Multi-versioning shared mutable state for MorphStream.
//!
//! The execution stage of MorphStream (Section 6 of the paper) relies on a
//! *multi-versioning state table*: every write appends a timestamped version
//! of the record instead of overwriting it, which
//!
//! * lets speculative execution read the exact version produced by the
//!   operation it temporally depends on,
//! * makes aborts cheap — rolling back an operation removes only the versions
//!   it appended, exposing the latest prior version again, and
//! * supports windowed reads, which retrieve every version whose timestamp
//!   falls inside the window range.
//!
//! The store is organised as named tables ([`StateStore`]), each a sharded
//! hash map of per-key version chains protected by `parking_lot` locks.

#![warn(missing_docs)]

pub mod store;
pub mod table;
pub mod version;

pub use store::StateStore;
pub use table::MvTable;
pub use version::{Version, VersionChain, WriterId, INITIAL_WRITER};
