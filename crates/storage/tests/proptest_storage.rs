//! Property-based tests for the multi-version state table.
//!
//! These check the storage invariants the executor relies on:
//! * version chains stay ordered regardless of insertion order;
//! * rollback of a writer restores exactly the state visible before it wrote;
//! * windowed reads return precisely the versions inside the window;
//! * the sequence of visible values at increasing timestamps is consistent
//!   with replaying the writes in timestamp order.

use proptest::prelude::*;

use morphstream_common::TableId;
use morphstream_storage::{MvTable, Version, VersionChain};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chain_stays_sorted_under_arbitrary_insertion_order(
        mut entries in proptest::collection::vec((1u64..1000, 0u32..4, 0i64..100), 1..60)
    ) {
        let mut chain = VersionChain::with_initial(0);
        for (i, (ts, stmt, value)) in entries.drain(..).enumerate() {
            chain.insert(Version { ts, stmt, writer: i as u64, value });
        }
        let versions = chain.versions();
        for w in versions.windows(2) {
            prop_assert!((w[0].ts, w[0].stmt) <= (w[1].ts, w[1].stmt));
        }
    }

    #[test]
    fn read_before_matches_linear_scan(
        entries in proptest::collection::vec((1u64..200, 0i64..100), 1..50),
        probe_ts in 1u64..220
    ) {
        let mut chain = VersionChain::with_initial(7);
        for (i, (ts, value)) in entries.iter().enumerate() {
            chain.insert(Version { ts: *ts, stmt: 0, writer: i as u64, value: *value });
        }
        // Oracle: newest version with ts < probe_ts, ties broken by insertion
        // order among equal (ts, stmt) pairs — which matches append order.
        let expected = chain
            .versions()
            .iter()
            .rev()
            .find(|v| v.ts < probe_ts)
            .map(|v| v.value);
        let got = chain.read_before(probe_ts, 0).map(|v| v.value);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rollback_restores_pre_writer_visibility(
        writes in proptest::collection::vec((1u64..100, 0i64..1000), 1..40),
        victim_idx in 0usize..40
    ) {
        let table = MvTable::new(TableId(0), "t", 0, false);
        table.preallocate_range(1);
        for (i, (ts, value)) in writes.iter().enumerate() {
            table.write(0, *ts, 0, i as u64, *value).unwrap();
        }
        let victim = (victim_idx % writes.len()) as u64;
        // Oracle table: replay every write except the victim's.
        let oracle = MvTable::new(TableId(1), "o", 0, false);
        oracle.preallocate_range(1);
        for (i, (ts, value)) in writes.iter().enumerate() {
            if i as u64 != victim {
                oracle.write(0, *ts, 0, i as u64, *value).unwrap();
            }
        }
        table.rollback_writer(0, victim);
        prop_assert_eq!(table.read_latest(0).unwrap(), oracle.read_latest(0).unwrap());
        // Visibility at every probe timestamp matches as well.
        for probe in [1u64, 25, 50, 75, 100, 101] {
            prop_assert_eq!(
                table.read_before(0, probe, 0).unwrap(),
                oracle.read_before(0, probe, 0).unwrap()
            );
        }
    }

    #[test]
    fn window_reads_return_exactly_in_range_versions(
        writes in proptest::collection::vec((1u64..100, 0i64..1000), 0..40),
        lo in 0u64..100,
        span in 0u64..100
    ) {
        let table = MvTable::new(TableId(0), "t", 0, false);
        table.preallocate_range(1);
        for (i, (ts, value)) in writes.iter().enumerate() {
            table.write(0, *ts, 0, i as u64, *value).unwrap();
        }
        let hi = lo.saturating_add(span);
        let got: Vec<i64> = table.window(0, lo, hi).unwrap().iter().map(|v| v.value).collect();
        let mut expected: Vec<(u64, i64)> = writes
            .iter()
            .filter(|(ts, _)| *ts >= lo && *ts <= hi)
            .map(|(ts, v)| (*ts, *v))
            .collect();
        if lo == 0 {
            // the initial seed version lives at timestamp 0
            expected.insert(0, (0, 0));
        }
        expected.sort_by_key(|(ts, _)| *ts);
        // Compare multisets of values at each timestamp: equal timestamps may
        // be ordered by insertion, so compare sorted pairs.
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut exp_values: Vec<i64> = expected.iter().map(|(_, v)| *v).collect();
        exp_values.sort_unstable();
        prop_assert_eq!(got_sorted, exp_values);
    }

    #[test]
    fn truncation_never_changes_the_latest_visible_value(
        writes in proptest::collection::vec((1u64..100, 0i64..1000), 1..40),
        cut in 1u64..120
    ) {
        let table = MvTable::new(TableId(0), "t", 0, false);
        table.preallocate_range(1);
        for (i, (ts, value)) in writes.iter().enumerate() {
            table.write(0, *ts, 0, i as u64, *value).unwrap();
        }
        let latest_before = table.read_latest(0).unwrap();
        table.truncate_before(cut);
        prop_assert_eq!(table.read_latest(0).unwrap(), latest_before);
    }
}
