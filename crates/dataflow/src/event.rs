//! The universal event type declarative scenarios flow end to end.
//!
//! Every registry operator consumes and produces [`ScenarioEvent`], so any
//! stage output can feed any stage input and a TOML file is free to wire
//! stages in whatever shape it likes. The fields are deliberately generic —
//! each [`EventKind`] documents how the registry apps interpret them.

use morphstream_common::hash::Fnv1a;
use morphstream_common::Value;

/// What a [`ScenarioEvent`] represents; registry apps branch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Credit `amount` to account `key` (Streaming Ledger).
    Deposit,
    /// Move `amount` from account `key` to account `key2`.
    Transfer,
    /// A payment card transaction of `amount` by account `key` (fraud apps).
    Card,
    /// A buy order: `amount` units at price level `key2` by trader `key`.
    Buy,
    /// A sell order: `amount` units at price level `key2` by trader `key`.
    Sell,
    /// An ad impression costing `amount` for campaign `key`.
    Impression,
    /// An ad click for campaign `key`.
    Click,
    /// A toll of `amount` for vehicle `key` on road segment `key2`.
    Toll,
}

impl EventKind {
    fn tag(self) -> u8 {
        match self {
            EventKind::Deposit => 0,
            EventKind::Transfer => 1,
            EventKind::Card => 2,
            EventKind::Buy => 3,
            EventKind::Sell => 4,
            EventKind::Impression => 5,
            EventKind::Click => 6,
            EventKind::Toll => 7,
        }
    }
}

/// One event of a declarative scenario.
///
/// `ts` orders events when the loader merges multiple feeds; `feed` is the
/// ordinal of the entry stage the event is destined for (set by the loader,
/// matched by the per-entry dispatch routes). `aux` and `marked` are the
/// enrichment channel: operators record transaction results in `aux` and
/// scenario-defined flags (committed / flagged / filled) in `marked`, and
/// downstream stages or routes act on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// Event time, used only to merge feeds deterministically at load time.
    pub ts: u64,
    /// Ordinal of the target entry stage (0-based, loader-assigned).
    pub feed: u32,
    /// How the registry apps interpret the payload fields.
    pub kind: EventKind,
    /// Primary key (account, trader, campaign, vehicle, ...).
    pub key: u64,
    /// Secondary key (transfer target, price level, road segment, ...).
    pub key2: u64,
    /// Payload amount (money, quantity, cost, ...).
    pub amount: Value,
    /// Enrichment value carried between stages (e.g. a running total).
    pub aux: Value,
    /// Scenario-defined flag (committed / flagged / filled), set by stages
    /// and consumed by `committed`-style routes or downstream stages.
    pub marked: bool,
}

impl ScenarioEvent {
    /// A fresh event of `kind` at time `ts`; payload fields default to zero.
    pub fn new(kind: EventKind, ts: u64) -> Self {
        Self {
            ts,
            feed: 0,
            kind,
            key: 0,
            key2: 0,
            amount: 0,
            aux: 0,
            marked: false,
        }
    }

    /// Order-sensitive content digest, used when a scenario terminal must
    /// reduce its outputs to a `u64` (the served dataflow's output sink).
    pub fn digest(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.update(&[self.kind.tag(), self.marked as u8]);
        hash.update(&self.ts.to_le_bytes());
        hash.update(&self.key.to_le_bytes());
        hash.update(&self.key2.to_le_bytes());
        hash.update(&self.amount.to_le_bytes());
        hash.update(&self.aux.to_le_bytes());
        hash.finish()
    }
}
