//! TOML scenario files → validated [`Topology`] instances.
//!
//! A scenario file has three sections:
//!
//! ```toml
//! [topology]              # one per file
//! name = "adclick"        # default: the file stem
//! terminal = "attribution"
//! concurrent = false      # serial wave loop vs concurrent runtime
//! channel_capacity = 4    # per-edge bounded channel, in batches
//! threads = 2             # worker threads per operator instance
//! punctuation = 256       # default punctuation interval of every stage
//!
//! [[feeds]]               # one per input feed
//! id = "clicks"
//! source = "clicks"       # a registered feed source
//! entry = "click-tally"   # an entry stage (a stage with no inputs)
//! events = 1024
//! seed = 33
//! phase = 1               # ts = phase + i * stride; feeds merge by ts
//! stride = 6
//!
//! [[stages]]              # one per operator
//! id = "attribution"
//! app = "ad-attribution"  # a registered app
//! inputs = ["imp-tally", "click-tally"]
//! route = "forward"       # a registered route, applied to incoming edges
//! parallelism = 1         # keyed routes allow > 1
//! window = 512            # app-specific keys, validated by the registry
//! ```
//!
//! Stages without `inputs` are the topology's *entries*, in declaration
//! order; each feed names the entry its events are destined for. The loader
//! concatenates all feeds, stably sorts by `ts` (ties keep feed declaration
//! order), and builds the topology through
//! [`TopologyBuilder::build_with_entries`], so the run is deterministic
//! regardless of how the feeds interleave.
//!
//! Every validation error cites the offending stage/feed id and key.

use std::fmt;
use std::path::Path;

use morphstream::storage::StateStore;
use morphstream::{
    EngineConfig, EntryBinding, OperatorHandle, Route, StreamApp, Topology, TopologyBuilder,
    TopologyConfig, TopologyError, TxnBuilder, TxnOutcome,
};
use morphstream_common::toml::{TomlDocument, TomlError, TomlTable};
use morphstream_workloads::SlEvent;

use crate::event::{EventKind, ScenarioEvent};
use crate::registry::{self, FeedContext, ScenarioApp, StageContext};

/// Keys every `[topology]` section accepts.
const TOPOLOGY_KEYS: &[&str] = &[
    "name",
    "terminal",
    "concurrent",
    "channel_capacity",
    "threads",
    "punctuation",
];

/// Builtin keys every `[[stages]]` section accepts (apps add their own).
const STAGE_KEYS: &[&str] = &["id", "app", "inputs", "route", "parallelism", "punctuation"];

/// Builtin keys every `[[feeds]]` section accepts (sources add their own).
const FEED_KEYS: &[&str] = &["id", "source", "entry", "events", "seed", "phase", "stride"];

/// Everything that can go wrong loading a scenario file. Every variant
/// carries enough context to point at the offending section and key.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// Path that failed to read.
        path: String,
        /// The underlying I/O error.
        error: String,
    },
    /// The file is not valid TOML (subset).
    Parse {
        /// Path (or origin label) of the document.
        path: String,
        /// The parse error, with its line number.
        error: TomlError,
    },
    /// A required key is absent.
    MissingKey {
        /// Section the key is missing from (e.g. `stage "scoring"`).
        scope: String,
        /// The missing key.
        key: &'static str,
    },
    /// A key holds a value of the wrong type.
    BadType {
        /// Section holding the key.
        scope: String,
        /// The offending key.
        key: String,
        /// What the key must hold.
        expected: &'static str,
    },
    /// A key no registry entry accepts (usually a typo).
    UnknownKey {
        /// Section holding the key.
        scope: String,
        /// The unrecognised key.
        key: String,
    },
    /// A stage names an app the registry does not have.
    UnknownApp {
        /// The stage id.
        stage: String,
        /// The unrecognised app name.
        app: String,
    },
    /// A stage names a route the registry does not have.
    UnknownRoute {
        /// The stage id.
        stage: String,
        /// The unrecognised route name.
        route: String,
    },
    /// A stage's `inputs` names a stage id that does not exist.
    UnknownInput {
        /// The stage id.
        stage: String,
        /// The unrecognised input id.
        input: String,
    },
    /// A feed names a source the registry does not have.
    UnknownSource {
        /// The feed id.
        feed: String,
        /// The unrecognised source name.
        source: String,
    },
    /// A feed's `entry` does not name an entry stage.
    UnknownEntry {
        /// The feed id.
        feed: String,
        /// The offending entry name.
        entry: String,
    },
    /// A structural constraint failed (duplicate ids, no entries, ...).
    Invalid {
        /// Section the constraint applies to.
        scope: String,
        /// What went wrong.
        message: String,
    },
    /// The topology builder rejected the assembled dataflow (cycles,
    /// unkeyed parallel routes, ...); operator names are stage ids.
    Build(TopologyError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            LoadError::Parse { path, error } => write!(f, "{path}: {error}"),
            LoadError::MissingKey { scope, key } => {
                write!(f, "{scope}: missing required key {key:?}")
            }
            LoadError::BadType {
                scope,
                key,
                expected,
            } => write!(f, "{scope}: key {key:?} must be a {expected}"),
            LoadError::UnknownKey { scope, key } => write!(
                f,
                "{scope}: unknown key {key:?} (see `morphstream run --list` for accepted keys)"
            ),
            LoadError::UnknownApp { stage, app } => write!(
                f,
                "stage {stage:?}: unknown app {app:?} (see `morphstream run --list`)"
            ),
            LoadError::UnknownRoute { stage, route } => write!(
                f,
                "stage {stage:?}: unknown route {route:?} (see `morphstream run --list`)"
            ),
            LoadError::UnknownInput { stage, input } => {
                write!(f, "stage {stage:?}: input {input:?} is not a stage id")
            }
            LoadError::UnknownSource { feed, source } => write!(
                f,
                "feed {feed:?}: unknown source {source:?} (see `morphstream run --list`)"
            ),
            LoadError::UnknownEntry { feed, entry } => write!(
                f,
                "feed {feed:?}: entry {entry:?} is not an entry stage (a stage with no inputs)"
            ),
            LoadError::Invalid { scope, message } => write!(f, "{scope}: {message}"),
            LoadError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// One `[[stages]]` entry, validated against the registry.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage id: operator name and table-name prefix.
    pub id: String,
    /// Registered app name.
    pub app: String,
    /// Upstream stage ids (empty = entry stage).
    pub inputs: Vec<String>,
    /// Registered route name, applied to every incoming edge.
    pub route: String,
    /// Parallel instances (keyed routes required above 1).
    pub parallelism: usize,
    /// Punctuation interval of this stage's engine.
    pub punctuation: usize,
    /// The full section, for app-specific keys.
    pub config: TomlTable,
}

/// One `[[feeds]]` entry, validated against the registry.
#[derive(Debug, Clone)]
pub struct FeedDecl {
    /// Feed id (error context only).
    pub id: String,
    /// Registered source name.
    pub source: String,
    /// Entry stage this feed's events are destined for.
    pub entry: String,
    /// Number of events to generate.
    pub events: usize,
    /// Deterministic generator seed.
    pub seed: u64,
    /// The full section, for source-specific keys.
    pub config: TomlTable,
}

/// A fully validated scenario file.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (`[topology] name`, default: the file stem).
    pub name: String,
    /// Terminal stage id.
    pub terminal: String,
    /// Concurrent runtime (per-instance threads) vs the serial wave loop.
    pub concurrent: bool,
    /// Per-edge bounded channel capacity, in punctuation batches.
    pub channel_capacity: usize,
    /// Worker threads per operator instance.
    pub threads: usize,
    /// Default punctuation interval of every stage.
    pub punctuation: usize,
    /// The stages, in declaration order.
    pub stages: Vec<StageSpec>,
    /// The feeds, in declaration order (= merge tie-break order).
    pub feeds: Vec<FeedDecl>,
}

impl ScenarioSpec {
    /// Entry stage ids (stages with no inputs), in declaration order —
    /// their position is the `feed` ordinal events carry.
    pub fn entry_ids(&self) -> Vec<&str> {
        self.stages
            .iter()
            .filter(|s| s.inputs.is_empty())
            .map(|s| s.id.as_str())
            .collect()
    }

    /// Parse and validate a scenario document. `origin` labels errors and
    /// provides the default name (its file stem).
    pub fn parse(text: &str, origin: &str) -> Result<ScenarioSpec, LoadError> {
        let doc = TomlDocument::parse(text).map_err(|error| LoadError::Parse {
            path: origin.to_string(),
            error,
        })?;
        if let Some((key, _)) = doc.root.iter().next() {
            return Err(LoadError::UnknownKey {
                scope: "top level".to_string(),
                key: key.to_string(),
            });
        }
        for (name, _) in &doc.tables {
            if name != "topology" {
                return Err(LoadError::Invalid {
                    scope: format!("[{name}]"),
                    message: "unknown section (expected [topology], [[stages]], [[feeds]])".into(),
                });
            }
        }
        for (name, _) in &doc.arrays {
            if name != "stages" && name != "feeds" {
                return Err(LoadError::Invalid {
                    scope: format!("[[{name}]]"),
                    message: "unknown section (expected [topology], [[stages]], [[feeds]])".into(),
                });
            }
        }

        let scope = "[topology]".to_string();
        let topology = doc.table("topology").ok_or(LoadError::MissingKey {
            scope: scope.clone(),
            key: "terminal",
        })?;
        reject_unknown_keys(topology, &scope, TOPOLOGY_KEYS, &[])?;
        let default_name = Path::new(origin)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| origin.to_string());
        let name = str_key(topology, &scope, "name")?
            .map(str::to_string)
            .unwrap_or(default_name);
        let terminal = require_str(topology, &scope, "terminal")?.to_string();
        let concurrent = bool_key(topology, &scope, "concurrent")?.unwrap_or(false);
        let channel_capacity = usize_key(topology, &scope, "channel_capacity")?
            .unwrap_or(4)
            .max(1);
        let threads = usize_key(topology, &scope, "threads")?.unwrap_or(2).max(1);
        let punctuation = usize_key(topology, &scope, "punctuation")?
            .unwrap_or(128)
            .max(1);

        let mut stages = Vec::new();
        for section in doc.array_of("stages") {
            stages.push(parse_stage(section, punctuation)?);
        }
        if stages.is_empty() {
            return Err(LoadError::Invalid {
                scope,
                message: "a scenario needs at least one [[stages]] section".into(),
            });
        }
        for (i, stage) in stages.iter().enumerate() {
            if stages[..i].iter().any(|s| s.id == stage.id) {
                return Err(LoadError::Invalid {
                    scope: format!("stage {:?}", stage.id),
                    message: "duplicate stage id".into(),
                });
            }
        }

        let mut feeds = Vec::new();
        for (i, section) in doc.array_of("feeds").enumerate() {
            feeds.push(parse_feed(section, i)?);
        }

        let spec = ScenarioSpec {
            name,
            terminal,
            concurrent,
            channel_capacity,
            threads,
            punctuation,
            stages,
            feeds,
        };
        spec.cross_validate()?;
        Ok(spec)
    }

    fn cross_validate(&self) -> Result<(), LoadError> {
        let ids: Vec<&str> = self.stages.iter().map(|s| s.id.as_str()).collect();
        if !ids.contains(&self.terminal.as_str()) {
            return Err(LoadError::Invalid {
                scope: "[topology]".to_string(),
                message: format!("terminal {:?} is not a stage id", self.terminal),
            });
        }
        for stage in &self.stages {
            for input in &stage.inputs {
                if !ids.contains(&input.as_str()) {
                    return Err(LoadError::UnknownInput {
                        stage: stage.id.clone(),
                        input: input.clone(),
                    });
                }
            }
        }
        let entries = self.entry_ids();
        if entries.is_empty() {
            return Err(LoadError::Invalid {
                scope: "[topology]".to_string(),
                message: "no entry stage: every stage has inputs (the dataflow is cyclic)".into(),
            });
        }
        for feed in &self.feeds {
            if !entries.contains(&feed.entry.as_str()) {
                return Err(LoadError::UnknownEntry {
                    feed: feed.id.clone(),
                    entry: feed.entry.clone(),
                });
            }
        }
        Ok(())
    }
}

fn parse_stage(section: &TomlTable, default_punctuation: usize) -> Result<StageSpec, LoadError> {
    let id = require_str(section, "[[stages]]", "id")?.to_string();
    let scope = format!("stage {id:?}");
    let app = require_str(section, &scope, "app")?.to_string();
    let app_spec = registry::app(&app).ok_or_else(|| LoadError::UnknownApp {
        stage: id.clone(),
        app: app.clone(),
    })?;
    reject_unknown_keys(section, &scope, STAGE_KEYS, app_spec.keys)?;
    let inputs = match section.get("inputs") {
        None => Vec::new(),
        Some(value) => {
            let items = value.as_array().ok_or_else(|| LoadError::BadType {
                scope: scope.clone(),
                key: "inputs".into(),
                expected: "array of stage ids",
            })?;
            let mut inputs = Vec::with_capacity(items.len());
            for item in items {
                inputs.push(
                    item.as_str()
                        .ok_or_else(|| LoadError::BadType {
                            scope: scope.clone(),
                            key: "inputs".into(),
                            expected: "array of stage ids",
                        })?
                        .to_string(),
                );
            }
            inputs
        }
    };
    let route = str_key(section, &scope, "route")?
        .unwrap_or("forward")
        .to_string();
    if registry::route(&route).is_none() {
        return Err(LoadError::UnknownRoute { stage: id, route });
    }
    let parallelism = usize_key(section, &scope, "parallelism")?
        .unwrap_or(1)
        .max(1);
    let punctuation = usize_key(section, &scope, "punctuation")?
        .unwrap_or(default_punctuation)
        .max(1);
    Ok(StageSpec {
        id,
        app,
        inputs,
        route,
        parallelism,
        punctuation,
        config: section.clone(),
    })
}

fn parse_feed(section: &TomlTable, index: usize) -> Result<FeedDecl, LoadError> {
    let id = require_str(section, "[[feeds]]", "id")?.to_string();
    let scope = format!("feed {id:?}");
    let source = require_str(section, &scope, "source")?.to_string();
    let source_spec = registry::source(&source).ok_or_else(|| LoadError::UnknownSource {
        feed: id.clone(),
        source: source.clone(),
    })?;
    reject_unknown_keys(section, &scope, FEED_KEYS, source_spec.keys)?;
    let entry = require_str(section, &scope, "entry")?.to_string();
    let events = usize_key(section, &scope, "events")?.ok_or(LoadError::MissingKey {
        scope: scope.clone(),
        key: "events",
    })?;
    let seed = u64_key(section, &scope, "seed")?.unwrap_or(index as u64 + 1);
    Ok(FeedDecl {
        id,
        source,
        entry,
        events,
        seed,
        config: section.clone(),
    })
}

fn reject_unknown_keys(
    table: &TomlTable,
    scope: &str,
    builtin: &[&str],
    registered: &[(&str, &str)],
) -> Result<(), LoadError> {
    for (key, _) in table.iter() {
        if !builtin.contains(&key) && !registered.iter().any(|(name, _)| *name == key) {
            return Err(LoadError::UnknownKey {
                scope: scope.to_string(),
                key: key.to_string(),
            });
        }
    }
    Ok(())
}

fn str_key<'t>(table: &'t TomlTable, scope: &str, key: &str) -> Result<Option<&'t str>, LoadError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| LoadError::BadType {
            scope: scope.to_string(),
            key: key.to_string(),
            expected: "string",
        }),
    }
}

fn require_str<'t>(
    table: &'t TomlTable,
    scope: &str,
    key: &'static str,
) -> Result<&'t str, LoadError> {
    str_key(table, scope, key)?.ok_or(LoadError::MissingKey {
        scope: scope.to_string(),
        key,
    })
}

fn bool_key(table: &TomlTable, scope: &str, key: &str) -> Result<Option<bool>, LoadError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or_else(|| LoadError::BadType {
            scope: scope.to_string(),
            key: key.to_string(),
            expected: "boolean",
        }),
    }
}

fn u64_key(table: &TomlTable, scope: &str, key: &str) -> Result<Option<u64>, LoadError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_integer()
            .filter(|n| *n >= 0)
            .map(|n| Some(n as u64))
            .ok_or_else(|| LoadError::BadType {
                scope: scope.to_string(),
                key: key.to_string(),
                expected: "non-negative integer",
            }),
    }
}

fn usize_key(table: &TomlTable, scope: &str, key: &str) -> Result<Option<usize>, LoadError> {
    Ok(u64_key(table, scope, key)?.map(|n| n as usize))
}

/// Overrides the CLI applies on top of a scenario file.
#[derive(Debug, Clone, Default)]
pub struct LoadOverrides {
    /// Override `[topology] threads`.
    pub threads: Option<usize>,
    /// Override `[topology] concurrent`.
    pub concurrent: Option<bool>,
}

/// A scenario ready to run: the built topology, its one shared store, and
/// the merged event stream.
pub struct LoadedScenario {
    /// The validated spec the topology was built from.
    pub spec: ScenarioSpec,
    /// The dataflow, entries bound per the spec's entry stages.
    pub topology: Topology<ScenarioEvent, ScenarioEvent>,
    /// The one shared state store of every stage (digest it for equivalence).
    pub store: StateStore,
    /// All feeds merged by timestamp (ties keep feed declaration order).
    pub events: Vec<ScenarioEvent>,
}

/// Load a scenario from a file.
pub fn load_file(path: &Path, overrides: &LoadOverrides) -> Result<LoadedScenario, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    load_str(&text, &path.display().to_string(), overrides)
}

/// Load a scenario from an in-memory document; `origin` labels errors and
/// provides the default scenario name.
pub fn load_str(
    text: &str,
    origin: &str,
    overrides: &LoadOverrides,
) -> Result<LoadedScenario, LoadError> {
    let mut spec = ScenarioSpec::parse(text, origin)?;
    if let Some(threads) = overrides.threads {
        spec.threads = threads.max(1);
    }
    if let Some(concurrent) = overrides.concurrent {
        spec.concurrent = concurrent;
    }
    let events = build_events(&spec)?;
    let (topology, store) = assemble(&spec)?;
    Ok(LoadedScenario {
        spec,
        topology,
        store,
        events,
    })
}

/// Generate and merge every feed of a validated spec: concatenate in
/// declaration order, assign each event its entry ordinal, stably sort by
/// `ts`. The result is independent of how the feeds would arrive.
pub fn build_events(spec: &ScenarioSpec) -> Result<Vec<ScenarioEvent>, LoadError> {
    let entries = spec.entry_ids();
    let mut all = Vec::new();
    for feed in &spec.feeds {
        let ordinal = entries
            .iter()
            .position(|e| *e == feed.entry)
            .expect("feed entries are validated") as u32;
        let source = registry::source(&feed.source).expect("feed sources are validated");
        let ctx = FeedContext {
            feed: &feed.id,
            config: &feed.config,
            events: feed.events,
            seed: feed.seed,
        };
        let mut events = source.build(&ctx)?;
        for ev in &mut events {
            ev.feed = ordinal;
        }
        all.extend(events);
    }
    all.sort_by_key(|ev| ev.ts);
    Ok(all)
}

/// Dispatch route of entry ordinal `k`: keep only the events destined for it.
fn dispatch_route(ordinal: u32) -> Route<ScenarioEvent, ScenarioEvent> {
    Route::filter_map(move |ev: &ScenarioEvent| (ev.feed == ordinal).then(|| ev.clone()))
}

fn engine_config(spec: &ScenarioSpec, stage: &StageSpec) -> EngineConfig {
    EngineConfig::with_threads(spec.threads).with_punctuation_interval(stage.punctuation)
}

fn topology_config(spec: &ScenarioSpec) -> TopologyConfig {
    TopologyConfig::default()
        .with_channel_capacity(spec.channel_capacity)
        .with_concurrent(spec.concurrent)
}

fn assemble(
    spec: &ScenarioSpec,
) -> Result<(Topology<ScenarioEvent, ScenarioEvent>, StateStore), LoadError> {
    let store = StateStore::new();
    let mut builder = TopologyBuilder::new();
    let mut handles: Vec<(&str, OperatorHandle<ScenarioEvent, ScenarioEvent>)> = Vec::new();
    for stage in &spec.stages {
        let ctx = StageContext {
            stage: &stage.id,
            store: &store,
            config: &stage.config,
        };
        let app = registry::app(&stage.app)
            .expect("stage apps are validated")
            .build(&ctx)?;
        let mut handle =
            builder.add_operator(&stage.id, app, store.clone(), engine_config(spec, stage));
        if stage.parallelism > 1 {
            handle = handle.with_parallelism(stage.parallelism);
        }
        handles.push((&stage.id, handle));
    }
    let lookup = |id: &str| {
        handles
            .iter()
            .find(|(name, _)| *name == id)
            .expect("stage ids are validated")
            .1
    };
    for stage in &spec.stages {
        let to = lookup(&stage.id);
        let route = registry::route(&stage.route).expect("stage routes are validated");
        for input in &stage.inputs {
            builder.connect(lookup(input), to, route.build());
        }
    }
    let entries = spec
        .entry_ids()
        .iter()
        .enumerate()
        .map(|(ordinal, id)| EntryBinding::new(lookup(id), dispatch_route(ordinal as u32)))
        .collect();
    let topology = builder
        .build_with_entries(entries, lookup(&spec.terminal), topology_config(spec))
        .map_err(LoadError::Build)?;
    Ok((topology, store))
}

/// A scenario loaded for `morphstream serve`: the dataflow typed over the
/// server's wire event ([`SlEvent`] in, output digests out).
pub struct ServeScenario {
    /// The validated spec the topology was built from.
    pub spec: ScenarioSpec,
    /// The dataflow: wire events converted at the entry, terminal outputs
    /// reduced to their content digest.
    pub topology: Topology<SlEvent, u64>,
    /// The one shared state store of every stage.
    pub store: StateStore,
}

/// Load a scenario file for `morphstream serve`. The served dataflow must
/// have exactly one entry stage (the socket is the only feed); declared
/// `[[feeds]]` sections are validated but unused.
pub fn load_serve_file(path: &Path) -> Result<ServeScenario, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    let spec = ScenarioSpec::parse(&text, &path.display().to_string())?;
    let (topology, store) = assemble_serve(&spec)?;
    Ok(ServeScenario {
        spec,
        topology,
        store,
    })
}

/// Map the server's wire event onto the scenario vocabulary.
fn convert_sl(ev: &SlEvent) -> ScenarioEvent {
    match ev {
        SlEvent::Deposit { account, amount } => {
            let mut out = ScenarioEvent::new(EventKind::Deposit, 0);
            out.key = *account;
            out.amount = *amount;
            out
        }
        SlEvent::Transfer { from, to, amount } => {
            let mut out = ScenarioEvent::new(EventKind::Transfer, 0);
            out.key = *from;
            out.key2 = *to;
            out.amount = *amount;
            out
        }
    }
}

/// Wraps the terminal stage's app so the topology's output is the compact
/// `u64` the server digests and streams into its output sink.
struct DigestTerminal {
    inner: ScenarioApp,
}

impl StreamApp for DigestTerminal {
    type Event = ScenarioEvent;
    type Output = u64;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        self.inner.state_access(ev, txn);
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> u64 {
        self.inner.post_process(ev, outcome).digest()
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.inner.expected_abort_ratio()
    }
}

fn assemble_serve(spec: &ScenarioSpec) -> Result<(Topology<SlEvent, u64>, StateStore), LoadError> {
    let entries = spec.entry_ids();
    if entries.len() != 1 {
        return Err(LoadError::Invalid {
            scope: "[topology]".to_string(),
            message: format!(
                "serve requires exactly one entry stage (the socket is the only feed), found {}",
                entries.len()
            ),
        });
    }
    for stage in &spec.stages {
        if stage.inputs.contains(&spec.terminal) {
            return Err(LoadError::Invalid {
                scope: format!("stage {:?}", stage.id),
                message: format!(
                    "the terminal stage {:?} cannot feed another stage",
                    spec.terminal
                ),
            });
        }
    }
    let store = StateStore::new();
    let mut builder = TopologyBuilder::new();
    let mut handles: Vec<(&str, OperatorHandle<ScenarioEvent, ScenarioEvent>)> = Vec::new();
    let mut terminal: Option<OperatorHandle<ScenarioEvent, u64>> = None;
    for stage in &spec.stages {
        let ctx = StageContext {
            stage: &stage.id,
            store: &store,
            config: &stage.config,
        };
        let app = registry::app(&stage.app)
            .expect("stage apps are validated")
            .build(&ctx)?;
        let config = engine_config(spec, stage);
        if stage.id == spec.terminal {
            let mut handle = builder.add_operator(
                &stage.id,
                DigestTerminal { inner: app },
                store.clone(),
                config,
            );
            if stage.parallelism > 1 {
                handle = handle.with_parallelism(stage.parallelism);
            }
            terminal = Some(handle);
        } else {
            let mut handle = builder.add_operator(&stage.id, app, store.clone(), config);
            if stage.parallelism > 1 {
                handle = handle.with_parallelism(stage.parallelism);
            }
            handles.push((&stage.id, handle));
        }
    }
    let terminal_handle = terminal.expect("terminal is a validated stage id");
    let lookup = |id: &str| {
        handles
            .iter()
            .find(|(name, _)| *name == id)
            .expect("stage ids are validated; the terminal feeds nothing")
            .1
    };
    for stage in &spec.stages {
        let route = registry::route(&stage.route).expect("stage routes are validated");
        if stage.id == spec.terminal {
            for input in &stage.inputs {
                builder.connect(lookup(input), terminal_handle, route.build());
            }
        } else {
            let to = lookup(&stage.id);
            for input in &stage.inputs {
                builder.connect(lookup(input), to, route.build());
            }
        }
    }
    let entry_id = entries[0];
    let binding = if entry_id == spec.terminal {
        EntryBinding::new(terminal_handle, Route::map(convert_sl))
    } else {
        EntryBinding::new(lookup(entry_id), Route::map(convert_sl))
    };
    let topology = builder
        .build_with_entries(vec![binding], terminal_handle, topology_config(spec))
        .map_err(LoadError::Build)?;
    Ok((topology, store))
}
