//! Drive a loaded scenario end to end — the engine behind `morphstream run`.

use std::path::Path;
use std::time::Instant;

use morphstream::{ReportSnapshot, TxnEngine};
use morphstream_common::json::JsonObject;

use crate::loader::{load_file, LoadError, LoadOverrides};

/// Summary of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name from the file.
    pub name: String,
    /// Whether the concurrent runtime ran (after overrides).
    pub concurrent: bool,
    /// Worker threads per operator instance (after overrides).
    pub threads: usize,
    /// Events fed into the topology.
    pub events: usize,
    /// Outputs the terminal stage emitted.
    pub outputs: usize,
    /// Final `state_digest()` of the scenario's shared store — the
    /// equivalence witness the smoke canary compares across runs.
    pub state_digest: u64,
    /// Wall-clock seconds of the push + finish.
    pub elapsed_seconds: f64,
    /// The full engine report snapshot.
    pub snapshot: ReportSnapshot,
}

impl ScenarioOutcome {
    /// One JSON object: run parameters, digest, and the nested report.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("scenario", &self.name)
            .boolean("concurrent", self.concurrent)
            .unsigned("threads", self.threads as u64)
            .unsigned("events", self.events as u64)
            .unsigned("outputs", self.outputs as u64)
            .string("state_digest", &format!("{:016x}", self.state_digest))
            .fixed("elapsed_seconds", self.elapsed_seconds, 6)
            .raw("report", self.snapshot.to_json())
            .build()
    }

    /// Human-readable summary lines.
    pub fn render(&self) -> String {
        format!(
            "scenario {}: {} events -> {} outputs ({} committed, {} aborted) \
             in {:.3}s on {} runtime, {} threads\nstate digest {:016x}",
            self.name,
            self.events,
            self.outputs,
            self.snapshot.committed,
            self.snapshot.aborted,
            self.elapsed_seconds,
            if self.concurrent {
                "concurrent"
            } else {
                "serial"
            },
            self.threads,
            self.state_digest,
        )
    }
}

/// Load and run one scenario file: push the merged feeds through the
/// topology, finish the session, digest the store.
pub fn run_file(path: &Path, overrides: &LoadOverrides) -> Result<ScenarioOutcome, LoadError> {
    let mut loaded = load_file(path, overrides)?;
    let events = std::mem::take(&mut loaded.events);
    let fed = events.len();
    let started = Instant::now();
    let mut pipeline = loaded.topology.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();
    let elapsed_seconds = started.elapsed().as_secs_f64();
    Ok(ScenarioOutcome {
        name: loaded.spec.name.clone(),
        concurrent: loaded.spec.concurrent,
        threads: loaded.spec.threads,
        events: fed,
        outputs: report.outputs.len() + report.drained_outputs,
        state_digest: loaded.store.state_digest(),
        elapsed_seconds,
        snapshot: report.snapshot(),
    })
}
