//! The operator / route / feed-source registries behind the TOML loader.
//!
//! Each entry pairs a name usable in a scenario file with a constructor and
//! the config keys it accepts; [`listing`] renders the whole catalog for
//! `morphstream run --list`. Unknown keys in a `[[stages]]` or `[[feeds]]`
//! section are loader errors, so every accepted key is declared here.

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{Route, StreamApp};
use morphstream_common::rng::DetRng;
use morphstream_common::toml::TomlTable;
use morphstream_common::Value;

use crate::apps::{
    AdAttributionStage, FraudEnrichmentStage, FraudScoringStage, FraudSettlementStage,
    GrepSumStage, LedgerStage, OrderBookStage, TallyStage, TollChargeStage, TollStatsStage,
};
use crate::event::{EventKind, ScenarioEvent};
use crate::loader::LoadError;

/// A registry operator: any [`StreamApp`] over [`ScenarioEvent`]s.
pub type ScenarioApp = Arc<dyn StreamApp<Event = ScenarioEvent, Output = ScenarioEvent>>;

/// What an app constructor gets: the stage id (table-name prefix and error
/// context), the scenario's shared store, and the stage's `[[stages]]` table.
pub struct StageContext<'a> {
    /// The stage id from the scenario file.
    pub stage: &'a str,
    /// The one shared state store of the scenario.
    pub store: &'a StateStore,
    /// The stage's full `[[stages]]` section (builtin keys included).
    pub config: &'a TomlTable,
}

impl StageContext<'_> {
    /// Integer config value ≥ 0, or `default` when the key is absent.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, LoadError> {
        u64_or(self.config, &scope_stage(self.stage), key, default)
    }

    /// Signed integer config value, or `default` when the key is absent.
    pub fn value_or(&self, key: &str, default: Value) -> Result<Value, LoadError> {
        value_or(self.config, &scope_stage(self.stage), key, default)
    }
}

/// What a feed-source constructor gets: the feed id, its `[[feeds]]` table,
/// and the already-parsed common keys (`events`, `seed`).
pub struct FeedContext<'a> {
    /// The feed id from the scenario file.
    pub feed: &'a str,
    /// The feed's full `[[feeds]]` section (builtin keys included).
    pub config: &'a TomlTable,
    /// Number of events to generate.
    pub events: usize,
    /// Deterministic generator seed.
    pub seed: u64,
}

impl FeedContext<'_> {
    /// Integer config value ≥ 0, or `default` when the key is absent.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, LoadError> {
        u64_or(self.config, &scope_feed(self.feed), key, default)
    }

    /// String config value, or `default` when the key is absent.
    pub fn str_or<'c>(&'c self, key: &str, default: &'c str) -> Result<&'c str, LoadError> {
        match self.config.get(key) {
            None => Ok(default),
            Some(v) => v.as_str().ok_or_else(|| LoadError::BadType {
                scope: scope_feed(self.feed),
                key: key.to_string(),
                expected: "string",
            }),
        }
    }

    /// The `phase`/`stride` event-time knobs every source accepts: event `i`
    /// carries `ts = phase + i * stride`, so feeds interleave by timestamp.
    pub fn timeline(&self) -> Result<(u64, u64), LoadError> {
        Ok((self.u64_or("phase", 0)?, self.u64_or("stride", 1)?.max(1)))
    }
}

fn scope_stage(stage: &str) -> String {
    format!("stage {stage:?}")
}

fn scope_feed(feed: &str) -> String {
    format!("feed {feed:?}")
}

fn u64_or(config: &TomlTable, scope: &str, key: &str, default: u64) -> Result<u64, LoadError> {
    match config.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_integer()
            .filter(|n| *n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| LoadError::BadType {
                scope: scope.to_string(),
                key: key.to_string(),
                expected: "non-negative integer",
            }),
    }
}

fn value_or(
    config: &TomlTable,
    scope: &str,
    key: &str,
    default: Value,
) -> Result<Value, LoadError> {
    match config.get(key) {
        None => Ok(default),
        Some(v) => v.as_integer().ok_or_else(|| LoadError::BadType {
            scope: scope.to_string(),
            key: key.to_string(),
            expected: "integer",
        }),
    }
}

/// One registered operator constructor.
pub struct AppSpec {
    /// Name used in a stage's `app = "..."` key.
    pub name: &'static str,
    /// One-line description for `morphstream run --list`.
    pub summary: &'static str,
    /// Accepted config keys as `(key, description-with-default)` pairs.
    pub keys: &'static [(&'static str, &'static str)],
    builder: fn(&StageContext<'_>) -> Result<ScenarioApp, LoadError>,
}

impl AppSpec {
    /// Construct the operator for one stage.
    pub fn build(&self, ctx: &StageContext<'_>) -> Result<ScenarioApp, LoadError> {
        (self.builder)(ctx)
    }
}

static APPS: &[AppSpec] = &[
    AppSpec {
        name: "ledger",
        summary: "Streaming Ledger: Transfer moves key -> key2 (aborts on insufficient funds), anything else deposits",
        keys: &[(
            "initial_balance",
            "starting balance of every account (default 1000000)",
        )],
        builder: |ctx| {
            let initial = ctx.value_or("initial_balance", 1_000_000)?;
            Ok(Arc::new(LedgerStage::new(ctx.store, ctx.stage, initial)))
        },
    },
    AppSpec {
        name: "grep-sum",
        summary: "GS-style dependent write: values[key] = sum of source state values[key2]",
        keys: &[],
        builder: |ctx| Ok(Arc::new(GrepSumStage::new(ctx.store, ctx.stage))),
    },
    AppSpec {
        name: "tally",
        summary: "counts events per key (always commits; entry pre-aggregation or terminal sink)",
        keys: &[],
        builder: |ctx| Ok(Arc::new(TallyStage::new(ctx.store, ctx.stage))),
    },
    AppSpec {
        name: "fraud-enrichment",
        summary: "annotates each transaction with the account's running spend total (in aux)",
        keys: &[],
        builder: |ctx| Ok(Arc::new(FraudEnrichmentStage::new(ctx.store, ctx.stage))),
    },
    AppSpec {
        name: "fraud-scoring",
        summary: "flags by amount/velocity (flag in marked) and audits a profile via a non-deterministic read",
        keys: &[
            ("flag_amount", "flag single amounts at or above (default 950)"),
            (
                "velocity_limit",
                "flag accounts whose running total (aux) exceeds (default 30000)",
            ),
            (
                "audit_profiles",
                "audit-trail profiles sampled by the non-deterministic read (default 64)",
            ),
        ],
        builder: |ctx| {
            let flag_amount = ctx.value_or("flag_amount", 950)?;
            let velocity = ctx.value_or("velocity_limit", 30_000)?;
            let profiles = ctx.u64_or("audit_profiles", 64)?;
            Ok(Arc::new(FraudScoringStage::new(
                ctx.store, ctx.stage, flag_amount, velocity, profiles,
            )))
        },
    },
    AppSpec {
        name: "fraud-settlement",
        summary: "debits clean transactions (aborting on insufficient funds), quarantines flagged amounts",
        keys: &[(
            "initial_balance",
            "starting balance of every account (default 500000)",
        )],
        builder: |ctx| {
            let initial = ctx.value_or("initial_balance", 500_000)?;
            Ok(Arc::new(FraudSettlementStage::new(
                ctx.store, ctx.stage, initial,
            )))
        },
    },
    AppSpec {
        name: "toll-charge",
        summary: "TP charge: accumulates amount per vehicle key",
        keys: &[],
        builder: |ctx| Ok(Arc::new(TollChargeStage::new(ctx.store, ctx.stage))),
    },
    AppSpec {
        name: "toll-stats",
        summary: "TP road statistics: per-segment (key2) volume with a windowed read",
        keys: &[(
            "window",
            "trailing event-time window of the volume read (default 64)",
        )],
        builder: |ctx| {
            let window = ctx.u64_or("window", 64)?;
            Ok(Arc::new(TollStatsStage::new(ctx.store, ctx.stage, window)))
        },
    },
    AppSpec {
        name: "order-book",
        summary: "per-price-level inventory: Buy adds depth at key2, Sell withdraws (aborts when unfilled)",
        keys: &[(
            "restock",
            "resting depth every price level starts with (default 1000)",
        )],
        builder: |ctx| {
            let restock = ctx.value_or("restock", 1_000)?;
            Ok(Arc::new(OrderBookStage::new(ctx.store, ctx.stage, restock)))
        },
    },
    AppSpec {
        name: "ad-attribution",
        summary: "windowed impression/click join per campaign key (attributed spend in aux)",
        keys: &[(
            "window",
            "trailing event-time window of the attribution read (default 256)",
        )],
        builder: |ctx| {
            let window = ctx.u64_or("window", 256)?;
            Ok(Arc::new(AdAttributionStage::new(
                ctx.store, ctx.stage, window,
            )))
        },
    },
];

/// All registered apps.
pub fn apps() -> &'static [AppSpec] {
    APPS
}

/// Look an app up by its registry name.
pub fn app(name: &str) -> Option<&'static AppSpec> {
    APPS.iter().find(|a| a.name == name)
}

/// One registered route builder, attached to the edges into a stage by its
/// `route = "..."` key.
pub struct RouteSpec {
    /// Name used in a stage's `route = "..."` key.
    pub name: &'static str,
    /// One-line description for `morphstream run --list`.
    pub summary: &'static str,
    builder: fn() -> Route<ScenarioEvent, ScenarioEvent>,
}

impl RouteSpec {
    /// Build a fresh route for one edge.
    pub fn build(&self) -> Route<ScenarioEvent, ScenarioEvent> {
        (self.builder)()
    }
}

static ROUTES: &[RouteSpec] = &[
    RouteSpec {
        name: "forward",
        summary: "forward every event unchanged (the default)",
        builder: || Route::map(Clone::clone),
    },
    RouteSpec {
        name: "committed",
        summary: "forward only events the upstream stage marked",
        builder: || Route::filter_map(|ev: &ScenarioEvent| ev.marked.then(|| ev.clone())),
    },
    RouteSpec {
        name: "keyed",
        summary: "forward every event, partitioned by key across parallel instances",
        builder: || {
            Route::keyed(
                |ev: &ScenarioEvent| ev.key,
                |ev: &ScenarioEvent| Some(ev.clone()),
            )
        },
    },
    RouteSpec {
        name: "keyed-committed",
        summary: "forward only marked events, partitioned by key",
        builder: || {
            Route::keyed(
                |ev: &ScenarioEvent| ev.key,
                |ev: &ScenarioEvent| ev.marked.then(|| ev.clone()),
            )
        },
    },
];

/// All registered routes.
pub fn routes() -> &'static [RouteSpec] {
    ROUTES
}

/// Look a route up by its registry name.
pub fn route(name: &str) -> Option<&'static RouteSpec> {
    ROUTES.iter().find(|r| r.name == name)
}

/// One registered feed source: a deterministic event generator named by a
/// feed's `source = "..."` key.
pub struct SourceSpec {
    /// Name used in a feed's `source = "..."` key.
    pub name: &'static str,
    /// One-line description for `morphstream run --list`.
    pub summary: &'static str,
    /// Accepted config keys as `(key, description-with-default)` pairs
    /// (besides the builtin `events`/`seed`/`phase`/`stride`).
    pub keys: &'static [(&'static str, &'static str)],
    builder: fn(&FeedContext<'_>) -> Result<Vec<ScenarioEvent>, LoadError>,
}

impl SourceSpec {
    /// Generate the feed's events (their `feed` ordinal is assigned by the
    /// loader afterwards).
    pub fn build(&self, ctx: &FeedContext<'_>) -> Result<Vec<ScenarioEvent>, LoadError> {
        (self.builder)(ctx)
    }
}

static SOURCES: &[SourceSpec] = &[
    SourceSpec {
        name: "cards",
        summary: "card transactions: random account key, random amount",
        keys: &[
            ("accounts", "account key space (default 256)"),
            ("max_amount", "amounts are 1..max_amount (default 1000)"),
        ],
        builder: |ctx| {
            let accounts = ctx.u64_or("accounts", 256)?.max(1);
            let max_amount = ctx.u64_or("max_amount", 1_000)?.max(2);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let mut ev = ScenarioEvent::new(EventKind::Card, phase + i * stride);
                    ev.key = rng.next_range(0, accounts);
                    ev.amount = rng.next_range(1, max_amount) as Value;
                    ev
                })
                .collect())
        },
    },
    SourceSpec {
        name: "ledger",
        summary: "deposits and transfers over a random account space",
        keys: &[
            ("accounts", "account key space (default 1024)"),
            ("max_amount", "amounts are 1..max_amount (default 100)"),
            (
                "transfer_permille",
                "transfers per 1000 events, the rest deposit (default 300)",
            ),
        ],
        builder: |ctx| {
            let accounts = ctx.u64_or("accounts", 1_024)?.max(1);
            let max_amount = ctx.u64_or("max_amount", 100)?.max(2);
            let permille = ctx.u64_or("transfer_permille", 300)?.min(1_000);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let transfer = rng.next_below(1_000) < permille;
                    let kind = if transfer {
                        EventKind::Transfer
                    } else {
                        EventKind::Deposit
                    };
                    let mut ev = ScenarioEvent::new(kind, phase + i * stride);
                    ev.key = rng.next_range(0, accounts);
                    if transfer {
                        ev.key2 = rng.next_range(0, accounts);
                    }
                    ev.amount = rng.next_range(1, max_amount) as Value;
                    ev
                })
                .collect())
        },
    },
    SourceSpec {
        name: "orders",
        summary: "buy or sell orders: random trader key, price level key2, quantity",
        keys: &[
            ("side", "\"buy\" or \"sell\" (default \"buy\")"),
            ("traders", "trader key space (default 64)"),
            ("levels", "price-level key space (default 32)"),
            ("max_qty", "quantities are 1..max_qty (default 20)"),
        ],
        builder: |ctx| {
            let kind = match ctx.str_or("side", "buy")? {
                "buy" => EventKind::Buy,
                "sell" => EventKind::Sell,
                other => {
                    return Err(LoadError::Invalid {
                        scope: scope_feed(ctx.feed),
                        message: format!("side must be \"buy\" or \"sell\", got {other:?}"),
                    })
                }
            };
            let traders = ctx.u64_or("traders", 64)?.max(1);
            let levels = ctx.u64_or("levels", 32)?.max(1);
            let max_qty = ctx.u64_or("max_qty", 20)?.max(2);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let mut ev = ScenarioEvent::new(kind, phase + i * stride);
                    ev.key = rng.next_range(0, traders);
                    ev.key2 = rng.next_range(0, levels);
                    ev.amount = rng.next_range(1, max_qty) as Value;
                    ev
                })
                .collect())
        },
    },
    SourceSpec {
        name: "impressions",
        summary: "ad impressions: random campaign key, cost",
        keys: &[
            ("campaigns", "campaign key space (default 32)"),
            ("max_cost", "costs are 1..max_cost (default 50)"),
        ],
        builder: |ctx| {
            let campaigns = ctx.u64_or("campaigns", 32)?.max(1);
            let max_cost = ctx.u64_or("max_cost", 50)?.max(2);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let mut ev = ScenarioEvent::new(EventKind::Impression, phase + i * stride);
                    ev.key = rng.next_range(0, campaigns);
                    ev.amount = rng.next_range(1, max_cost) as Value;
                    ev
                })
                .collect())
        },
    },
    SourceSpec {
        name: "clicks",
        summary: "ad clicks: random campaign key, unit amount",
        keys: &[("campaigns", "campaign key space (default 32)")],
        builder: |ctx| {
            let campaigns = ctx.u64_or("campaigns", 32)?.max(1);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let mut ev = ScenarioEvent::new(EventKind::Click, phase + i * stride);
                    ev.key = rng.next_range(0, campaigns);
                    ev.amount = 1;
                    ev
                })
                .collect())
        },
    },
    SourceSpec {
        name: "tolls",
        summary: "toll notifications: random vehicle key, road segment key2, toll amount",
        keys: &[
            ("vehicles", "vehicle key space (default 128)"),
            ("segments", "road-segment key space (default 16)"),
            ("max_toll", "tolls are 1..max_toll (default 10)"),
        ],
        builder: |ctx| {
            let vehicles = ctx.u64_or("vehicles", 128)?.max(1);
            let segments = ctx.u64_or("segments", 16)?.max(1);
            let max_toll = ctx.u64_or("max_toll", 10)?.max(2);
            let (phase, stride) = ctx.timeline()?;
            let mut rng = DetRng::new(ctx.seed);
            Ok((0..ctx.events as u64)
                .map(|i| {
                    let mut ev = ScenarioEvent::new(EventKind::Toll, phase + i * stride);
                    ev.key = rng.next_range(0, vehicles);
                    ev.key2 = rng.next_range(0, segments);
                    ev.amount = rng.next_range(1, max_toll) as Value;
                    ev
                })
                .collect())
        },
    },
];

/// All registered feed sources.
pub fn sources() -> &'static [SourceSpec] {
    SOURCES
}

/// Look a feed source up by its registry name.
pub fn source(name: &str) -> Option<&'static SourceSpec> {
    SOURCES.iter().find(|s| s.name == name)
}

/// Render the whole catalog — apps, routes, and feed sources with their
/// accepted config keys — for `morphstream run --list`.
pub fn listing() -> String {
    let mut out = String::new();
    out.push_str("apps (stage `app = \"...\"`):\n");
    for app in APPS {
        out.push_str(&format!("  {:<18} {}\n", app.name, app.summary));
        for (key, doc) in app.keys {
            out.push_str(&format!("      {key} — {doc}\n"));
        }
    }
    out.push_str(
        "\nstage keys every [[stages]] section accepts:\n      \
         id, app, inputs, route, parallelism, punctuation\n",
    );
    out.push_str("\nroutes (stage `route = \"...\"`, applied to its incoming edges):\n");
    for route in ROUTES {
        out.push_str(&format!("  {:<18} {}\n", route.name, route.summary));
    }
    out.push_str("\nfeed sources (feed `source = \"...\"`):\n");
    for source in SOURCES {
        out.push_str(&format!("  {:<18} {}\n", source.name, source.summary));
        for (key, doc) in source.keys {
            out.push_str(&format!("      {key} — {doc}\n"));
        }
    }
    out.push_str(
        "\nfeed keys every [[feeds]] section accepts:\n      \
         id, source, entry, events, seed, phase, stride\n",
    );
    out
}
