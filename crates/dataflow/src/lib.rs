//! Declarative TOML-defined dataflows over the MorphStream engine.
//!
//! The paper's workloads (SL, GS, TP, fraud, order books) share one
//! execution substrate and differ only in topology shape; this crate makes
//! that shape data instead of code. A scenario file declares `[[stages]]`
//! (each naming a registered operator), `[[feeds]]` (deterministic event
//! generators merged by timestamp), and a `[topology]` header; the
//! [`loader`] validates it against the [`registry`] and builds a
//! [`Topology`](morphstream::Topology) — including *multi-entry* dataflows,
//! where several entry stages each consume their own feed and the engine
//! dispatches merged rounds so digests stay independent of feed arrival
//! interleaving.
//!
//! - [`event`] — [`ScenarioEvent`], the universal event every registry
//!   operator consumes and produces.
//! - [`apps`] — the operator implementations.
//! - [`registry`] — named app / route / feed-source constructors with their
//!   accepted config keys ([`registry::listing`] backs
//!   `morphstream run --list`).
//! - [`loader`] — file → validated spec → built topology, with errors that
//!   cite the offending stage/feed id and key.
//! - [`runner`] — `morphstream run`: push the merged feeds, report a
//!   [`ScenarioOutcome`] with the final state digest.

#![warn(missing_docs)]

pub mod apps;
pub mod event;
pub mod loader;
pub mod registry;
pub mod runner;

pub use event::{EventKind, ScenarioEvent};
pub use loader::{
    build_events, load_file, load_serve_file, load_str, FeedDecl, LoadError, LoadOverrides,
    LoadedScenario, ScenarioSpec, ServeScenario, StageSpec,
};
pub use registry::{
    app, apps, listing, route, routes, source, sources, AppSpec, FeedContext, RouteSpec,
    ScenarioApp, SourceSpec, StageContext,
};
pub use runner::{run_file, ScenarioOutcome};
