//! The registry's operator implementations, all typed
//! `ScenarioEvent -> ScenarioEvent`.
//!
//! Every stage creates its tables under a `"<stage id>."` prefix on the one
//! shared [`StateStore`] of the scenario, so the same app can appear twice in
//! a topology without table collisions, and a fused oracle can reproduce the
//! exact table set (names included) on a store of its own for
//! `state_digest()` comparison.

use std::sync::Arc;

use morphstream::app::result_or_zero;
use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::{StateRef, TableId, Value};

use crate::event::{EventKind, ScenarioEvent};

fn table(store: &StateStore, stage: &str, suffix: &str, default: Value) -> TableId {
    store.create_table(format!("{stage}.{suffix}"), default, true)
}

/// `ledger` — Streaming Ledger semantics: [`EventKind::Transfer`] withdraws
/// from `key` and credits `key2` (aborting on insufficient funds); every
/// other kind deposits `amount` into `key`.
pub struct LedgerStage {
    accounts: TableId,
}

impl LedgerStage {
    /// Create the stage and its `accounts` table.
    pub fn new(store: &StateStore, stage: &str, initial_balance: Value) -> Self {
        Self {
            accounts: table(store, stage, "accounts", initial_balance),
        }
    }
}

impl StreamApp for LedgerStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.kind == EventKind::Transfer {
            txn.write(self.accounts, ev.key, udfs::withdraw(ev.amount));
            txn.write_with_params(
                self.accounts,
                ev.key2,
                vec![StateRef::new(self.accounts, ev.key)],
                udfs::credit_if_param_at_least(ev.amount, ev.amount),
            );
        } else {
            txn.write(self.accounts, ev.key, udfs::add_delta(ev.amount));
        }
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `grep-sum` — GS-style dependent write: `values[key]` is overwritten with
/// the sum over the source state `values[key2]` (a two-state grep-and-sum).
pub struct GrepSumStage {
    values: TableId,
}

impl GrepSumStage {
    /// Create the stage and its `values` table.
    pub fn new(store: &StateStore, stage: &str) -> Self {
        Self {
            values: table(store, stage, "values", 0),
        }
    }
}

impl StreamApp for GrepSumStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        txn.write_with_params(
            self.values,
            ev.key,
            vec![StateRef::new(self.values, ev.key2)],
            udfs::sum_params(),
        );
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `tally` — counts events per `key` into a `counts` table; the minimal
/// always-committing stage (entry pre-aggregation, terminal sinks).
pub struct TallyStage {
    counts: TableId,
}

impl TallyStage {
    /// Create the stage and its `counts` table.
    pub fn new(store: &StateStore, stage: &str) -> Self {
        Self {
            counts: table(store, stage, "counts", 0),
        }
    }
}

impl StreamApp for TallyStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        txn.write(self.counts, ev.key, udfs::add_delta(1));
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `fraud-enrichment` — annotates each transaction with the account's
/// running spend total (carried downstream in `aux`).
pub struct FraudEnrichmentStage {
    activity: TableId,
}

impl FraudEnrichmentStage {
    /// Create the stage and its `activity` table.
    pub fn new(store: &StateStore, stage: &str) -> Self {
        Self {
            activity: table(store, stage, "activity", 0),
        }
    }
}

impl StreamApp for FraudEnrichmentStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        txn.write(self.activity, ev.key, udfs::add_delta(ev.amount));
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            ..ev.clone()
        }
    }
}

/// `fraud-scoring` — flags transactions by amount and spend velocity (the
/// enrichment total in `aux`), and audits a pseudo-random profile per
/// transaction through a non-deterministic read (the key is resolved from
/// the execution-time timestamp). The flag lands in `marked`.
pub struct FraudScoringStage {
    scores: TableId,
    audit: TableId,
    flag_amount: Value,
    velocity_limit: Value,
    audit_profiles: u64,
}

impl FraudScoringStage {
    /// Create the stage and its `scores` + `audit` tables.
    pub fn new(
        store: &StateStore,
        stage: &str,
        flag_amount: Value,
        velocity_limit: Value,
        audit_profiles: u64,
    ) -> Self {
        Self {
            scores: table(store, stage, "scores", 0),
            audit: table(store, stage, "audit", 0),
            flag_amount,
            velocity_limit,
            audit_profiles: audit_profiles.max(1),
        }
    }
}

impl StreamApp for FraudScoringStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        let profiles = self.audit_profiles;
        txn.non_det_read(self.audit, Arc::new(move |ts| ts % profiles), None);
        txn.write(self.scores, ev.key, udfs::add_delta(1));
    }

    fn post_process(&self, ev: &ScenarioEvent, _outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            marked: ev.amount >= self.flag_amount || ev.aux > self.velocity_limit,
            ..ev.clone()
        }
    }
}

/// `fraud-settlement` — debits clean transactions (`marked == false`) from
/// the account balance, aborting on insufficient funds; diverts flagged
/// amounts to a quarantine ledger. Outputs `marked == true` only for
/// transactions settled cleanly.
pub struct FraudSettlementStage {
    balances: TableId,
    quarantine: TableId,
}

impl FraudSettlementStage {
    /// Create the stage and its `balances` + `quarantine` tables.
    pub fn new(store: &StateStore, stage: &str, initial_balance: Value) -> Self {
        Self {
            balances: table(store, stage, "balances", initial_balance),
            quarantine: table(store, stage, "quarantine", 0),
        }
    }
}

impl StreamApp for FraudSettlementStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.marked {
            txn.write(self.quarantine, 0, udfs::add_delta(ev.amount));
        } else {
            txn.write(self.balances, ev.key, udfs::withdraw(ev.amount));
        }
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            marked: outcome.committed && !ev.marked,
            ..ev.clone()
        }
    }
}

/// `toll-charge` — TP-style charge: accumulates `amount` per vehicle `key`.
pub struct TollChargeStage {
    charges: TableId,
}

impl TollChargeStage {
    /// Create the stage and its `charges` table.
    pub fn new(store: &StateStore, stage: &str) -> Self {
        Self {
            charges: table(store, stage, "charges", 0),
        }
    }
}

impl StreamApp for TollChargeStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        txn.write(self.charges, ev.key, udfs::add_delta(ev.amount));
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `toll-stats` — TP-style road statistics: counts vehicles per segment
/// `key2` and reads the windowed volume over the trailing `window` events.
pub struct TollStatsStage {
    volumes: TableId,
    window: u64,
}

impl TollStatsStage {
    /// Create the stage and its `volumes` table.
    pub fn new(store: &StateStore, stage: &str, window: u64) -> Self {
        Self {
            volumes: table(store, stage, "volumes", 0),
            window: window.max(1),
        }
    }
}

impl StreamApp for TollStatsStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        txn.write(self.volumes, ev.key2, udfs::add_delta(1));
        txn.window_read(self.volumes, ev.key2, self.window, udfs::window_sum());
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 1),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `order-book` — a per-price-level inventory: [`EventKind::Buy`] adds
/// `amount` units of depth at level `key2`, [`EventKind::Sell`] withdraws
/// them (aborting when the level has insufficient depth — an unfilled
/// order). `marked` reports whether the order executed.
pub struct OrderBookStage {
    book: TableId,
}

impl OrderBookStage {
    /// Create the stage and its `book` table; every price level starts with
    /// `restock` units of resting depth.
    pub fn new(store: &StateStore, stage: &str, restock: Value) -> Self {
        Self {
            book: table(store, stage, "book", restock),
        }
    }
}

impl StreamApp for OrderBookStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.kind == EventKind::Sell {
            txn.write(self.book, ev.key2, udfs::withdraw(ev.amount));
        } else {
            txn.write(self.book, ev.key2, udfs::add_delta(ev.amount));
        }
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}

/// `ad-attribution` — windowed join of impressions and clicks per campaign
/// `key`: [`EventKind::Impression`] accumulates spend, [`EventKind::Click`]
/// reads the impression spend inside the trailing `window` events (the
/// attributed spend, reported in `aux`) and counts the attribution.
pub struct AdAttributionStage {
    impressions: TableId,
    attributed: TableId,
    window: u64,
}

impl AdAttributionStage {
    /// Create the stage and its `impressions` + `attributed` tables.
    pub fn new(store: &StateStore, stage: &str, window: u64) -> Self {
        Self {
            impressions: table(store, stage, "impressions", 0),
            attributed: table(store, stage, "attributed", 0),
            window: window.max(1),
        }
    }
}

impl StreamApp for AdAttributionStage {
    type Event = ScenarioEvent;
    type Output = ScenarioEvent;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.kind == EventKind::Click {
            txn.window_read(self.impressions, ev.key, self.window, udfs::window_sum());
            txn.write(self.attributed, ev.key, udfs::add_delta(1));
        } else {
            txn.write(self.impressions, ev.key, udfs::add_delta(ev.amount));
        }
    }

    fn post_process(&self, ev: &ScenarioEvent, outcome: &TxnOutcome) -> ScenarioEvent {
        ScenarioEvent {
            aux: result_or_zero(outcome, 0),
            marked: outcome.committed,
            ..ev.clone()
        }
    }
}
