//! Loader validation: every malformed scenario fails with an error that
//! cites the offending stage/feed id and key, and a well-formed one loads
//! and runs identically on both runtimes.

use morphstream::TxnEngine;
use morphstream_dataflow::{build_events, load_str, LoadError, LoadOverrides, ScenarioSpec};

const BASE: &str = r#"
[topology]
terminal = "sink"
punctuation = 16

[[feeds]]
id = "traffic"
source = "tolls"
entry = "charge"
events = 64
seed = 9

[[stages]]
id = "charge"
app = "toll-charge"

[[stages]]
id = "sink"
app = "tally"
inputs = ["charge"]
"#;

fn load(text: &str) -> Result<morphstream_dataflow::LoadedScenario, LoadError> {
    load_str(text, "test.toml", &LoadOverrides::default())
}

fn load_err(text: &str) -> LoadError {
    match load(text) {
        Ok(_) => panic!("scenario unexpectedly loaded"),
        Err(e) => e,
    }
}

#[test]
fn a_valid_scenario_loads_merges_feeds_and_runs_on_both_runtimes() {
    let mut loaded = load(BASE).expect("base scenario is valid");
    assert_eq!(loaded.spec.name, "test");
    assert_eq!(loaded.events.len(), 64);
    assert!(loaded.events.windows(2).all(|w| w[0].ts <= w[1].ts));

    let events = loaded.events.clone();
    let mut pipeline = loaded.topology.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();
    assert_eq!(report.events(), 64);
    assert_eq!(report.outputs.len(), 64);
    let serial_digest = loaded.store.state_digest();

    let mut concurrent = load_str(
        BASE,
        "test.toml",
        &LoadOverrides {
            threads: Some(1),
            concurrent: Some(true),
        },
    )
    .expect("base scenario is valid");
    let events = std::mem::take(&mut concurrent.events);
    let mut pipeline = concurrent.topology.pipeline();
    pipeline.push_iter(events);
    pipeline.finish();
    assert_eq!(concurrent.store.state_digest(), serial_digest);
}

#[test]
fn unknown_app_cites_the_stage_and_app_name() {
    let err = load_err(&BASE.replace("app = \"toll-charge\"", "app = \"toll-chargee\""));
    assert!(
        matches!(&err, LoadError::UnknownApp { stage, app } if stage == "charge" && app == "toll-chargee"),
        "got {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("charge") && msg.contains("toll-chargee"),
        "{msg}"
    );
}

#[test]
fn unknown_route_cites_the_stage_and_route_name() {
    let err = load_err(&BASE.replace(
        "inputs = [\"charge\"]",
        "inputs = [\"charge\"]\nroute = \"comitted\"",
    ));
    assert!(
        matches!(&err, LoadError::UnknownRoute { stage, route } if stage == "sink" && route == "comitted"),
        "got {err}"
    );
}

#[test]
fn a_cycle_surfaces_the_builders_error() {
    let cyclic = r#"
[topology]
terminal = "sink"

[[feeds]]
id = "traffic"
source = "tolls"
entry = "src"
events = 8

[[stages]]
id = "src"
app = "tally"

[[stages]]
id = "a"
app = "tally"
inputs = ["src", "b"]

[[stages]]
id = "b"
app = "tally"
inputs = ["a"]

[[stages]]
id = "sink"
app = "tally"
inputs = ["b"]
"#;
    let err = load_err(cyclic);
    assert!(matches!(err, LoadError::Build(_)), "got {err}");
}

#[test]
fn a_missing_input_stage_cites_the_stage_and_input() {
    let err = load_err(&BASE.replace("inputs = [\"charge\"]", "inputs = [\"nope\"]"));
    assert!(
        matches!(&err, LoadError::UnknownInput { stage, input } if stage == "sink" && input == "nope"),
        "got {err}"
    );
}

#[test]
fn a_mistyped_value_cites_the_stage_and_key() {
    let err = load_err(&BASE.replace(
        "app = \"toll-charge\"",
        "app = \"toll-charge\"\nparallelism = \"two\"",
    ));
    match &err {
        LoadError::BadType {
            scope,
            key,
            expected,
        } => {
            assert!(scope.contains("charge"), "{scope}");
            assert_eq!(key, "parallelism");
            assert!(expected.contains("integer"));
        }
        other => panic!("expected BadType, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("charge") && msg.contains("parallelism"),
        "{msg}"
    );
}

#[test]
fn an_unknown_key_cites_the_stage_and_key() {
    let err = load_err(&BASE.replace(
        "app = \"toll-charge\"",
        "app = \"toll-charge\"\nwindowz = 8",
    ));
    assert!(
        matches!(&err, LoadError::UnknownKey { scope, key } if scope.contains("charge") && key == "windowz"),
        "got {err}"
    );
}

#[test]
fn a_missing_required_key_is_reported() {
    let err = load_err(&BASE.replace("events = 64\n", ""));
    assert!(
        matches!(&err, LoadError::MissingKey { scope, key } if scope.contains("traffic") && *key == "events"),
        "got {err}"
    );
}

#[test]
fn a_feed_must_target_an_entry_stage() {
    let err = load_err(&BASE.replace("entry = \"charge\"", "entry = \"sink\""));
    assert!(
        matches!(&err, LoadError::UnknownEntry { feed, entry } if feed == "traffic" && entry == "sink"),
        "got {err}"
    );
}

#[test]
fn duplicate_stage_ids_are_rejected() {
    let err = load_err(
        &BASE
            .replace("id = \"sink\"", "id = \"charge\"")
            .replace("terminal = \"sink\"", "terminal = \"charge\""),
    );
    assert!(
        matches!(&err, LoadError::Invalid { scope, .. } if scope.contains("charge")),
        "got {err}"
    );
}

#[test]
fn feed_generation_is_deterministic_and_entry_ordinals_follow_declaration_order() {
    let spec = ScenarioSpec::parse(BASE, "test.toml").expect("valid");
    let first = build_events(&spec).expect("generates");
    let second = build_events(&spec).expect("generates");
    assert_eq!(first, second);
    assert!(first.iter().all(|ev| ev.feed == 0));
}
