//! Guards the `examples/quickstart.rs` flow with `cargo test`: the same bank
//! application (shared via `morphstream_repro::quickstart`), events, and
//! engine configuration, with the printed results turned into assertions. If
//! this test fails, the quickstart a new user runs first is broken.

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_repro::quickstart::{quickstart_events, Bank};

#[test]
fn quickstart_flow_end_to_end() {
    let store = StateStore::new();
    let accounts = store.create_table("accounts", 0, false);
    store.preallocate_range(accounts, 10).unwrap();

    let mut engine = MorphStream::new(
        Bank { accounts },
        store.clone(),
        EngineConfig::with_threads(4).with_punctuation_interval(4),
    );
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(quickstart_events());
    let report = pipeline.finish();

    // The report counts every event, commits all but the overdraft, and
    // carries per-event outputs in input order.
    assert_eq!(report.events(), 6);
    assert_eq!(report.committed, 5);
    assert_eq!(report.aborted, 1);
    assert_eq!(report.outputs.len(), 6);
    for (i, output) in report.outputs.iter().enumerate() {
        if i == 4 {
            assert!(output.contains("ABORTED"), "event 4 should abort: {output}");
        } else {
            assert!(
                output.ends_with(": committed"),
                "event {i} should commit: {output}"
            );
        }
    }
    assert!(report.k_events_per_second() > 0.0);
    assert!(
        !report.decision_trace().is_empty(),
        "the engine should record at least one scheduling decision"
    );

    // Final balances match the sequential execution of the event stream.
    let expected = [(0u64, 0i64), (1, 70), (2, 20), (3, 65)];
    for (account, balance) in expected {
        assert_eq!(
            store.read_latest(accounts, account).unwrap(),
            balance,
            "account {account}"
        );
    }
}
