//! Runtime behaviour of the concurrent topology: bounded channels give real
//! back-pressure (a slow downstream operator blocks `Pipeline::push` and
//! memory stays bounded), dropping a topology mid-stream joins every worker
//! thread without deadlock, operator panics propagate with their original
//! payload, and per-table version reclamation lets shared-store operators
//! reclaim again without touching a sibling's windowed state.

use morphstream::storage::StateStore;
use morphstream::{
    udfs, EngineConfig, Route, StreamApp, TopologyBuilder, TopologyConfig, TxnBuilder, TxnEngine,
    TxnOutcome,
};
use morphstream_common::config::test_threads;
use morphstream_common::{TableId, Value};

/// Fast upstream stage: one version per event into `table`.
struct FastCounter {
    table: TableId,
}

impl StreamApp for FastCounter {
    type Event = u64;
    type Output = u64;

    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.write(self.table, *key % 64, udfs::add_delta(1));
    }

    fn post_process(&self, key: &u64, _outcome: &TxnOutcome) -> u64 {
        *key
    }
}

/// Slow downstream stage: an emulated UDF cost per event throttles the
/// operator, so routed batches pile up against the bounded channel.
struct SlowSink {
    table: TableId,
    cost_us: u64,
}

impl StreamApp for SlowSink {
    type Event = u64;
    type Output = bool;

    fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        txn.write(self.table, *key % 8, udfs::add_delta(1));
    }

    fn post_process(&self, _key: &u64, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }
}

fn slow_sink_topology(
    reclaim: bool,
    capacity: usize,
) -> (morphstream::Topology<u64, bool>, StateStore) {
    let store = StateStore::new();
    let src = store.create_table("src", 0, true);
    let sink = store.create_table("sink", 0, true);
    let config = EngineConfig::with_threads(test_threads(2))
        .with_punctuation_interval(64)
        .with_reclaim_after_batch(reclaim);
    let mut builder = TopologyBuilder::new();
    let fast = builder.add_operator("fast", FastCounter { table: src }, store.clone(), config);
    let slow = builder.add_operator(
        "slow",
        SlowSink {
            table: sink,
            cost_us: 150,
        },
        store.clone(),
        config,
    );
    builder.connect(fast, slow, Route::map(|key: &u64| *key));
    let topology = builder
        .build(
            fast,
            slow,
            TopologyConfig::default()
                .with_concurrent(true)
                .with_channel_capacity(capacity),
        )
        .expect("valid dataflow");
    (topology, store)
}

#[test]
fn slow_downstream_applies_back_pressure_and_memory_stays_bounded() {
    // With per-table reclamation on and a capacity-1 channel, the fast stage
    // cannot run ahead of the slow sink: pushes block on the bounded channel
    // (observable through queue_full_waits) and the retained versions stay
    // at O(channel_capacity × punctuation interval) instead of O(stream).
    let (mut bounded, _store) = slow_sink_topology(true, 1);
    let report = bounded.run(0..2_048u64);
    assert_eq!(report.events(), 2_048);
    let total_waits: u64 = report.edges.iter().map(|e| e.queue_full_waits).sum();
    assert!(
        total_waits > 0,
        "a slow sink must fill the bounded channels: {:?}",
        report.edges
    );
    let bounded_peak = report.memory.peak_bytes();

    // The same stream with reclamation off retains every version — the
    // O(stream) cliff the bounded run must stay well under.
    let (mut unbounded, _store) = slow_sink_topology(false, 1);
    let unbounded_report = unbounded.run(0..2_048u64);
    let unbounded_peak = unbounded_report.memory.peak_bytes();
    assert!(
        bounded_peak * 2 < unbounded_peak,
        "bounded peak {bounded_peak} should be well under the O(stream) peak {unbounded_peak}"
    );
}

#[test]
fn dropping_a_topology_mid_stream_joins_all_workers_without_deadlock() {
    // Push a prefix of the stream (several batches deep into the slow sink's
    // backlog), never flush, and drop the topology: every worker thread must
    // wind down and join. A deadlock here hangs the test suite, so plain
    // completion is the assertion.
    let (mut topology, _store) = slow_sink_topology(true, 1);
    {
        let mut pipeline = topology.pipeline();
        pipeline.push_iter(0..512u64);
        // pipeline dropped without finish: the session stays open
    }
    drop(topology);

    // Same, but with an explicit mid-stream flush before the drop.
    let (mut topology, _store) = slow_sink_topology(true, 2);
    let mut pipeline = topology.pipeline();
    pipeline.push_iter(0..256u64);
    pipeline.flush();
    assert_eq!(pipeline.report().events(), 256);
    drop(pipeline);
    drop(topology);
}

#[test]
fn operator_panics_propagate_with_their_original_payload() {
    /// Panics when it sees the poison event.
    struct Exploder {
        table: TableId,
    }
    impl StreamApp for Exploder {
        type Event = u64;
        type Output = bool;
        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            assert!(*key != 97, "boom on event 97");
            txn.write(self.table, *key % 8, udfs::add_delta(1));
        }
        fn post_process(&self, _key: &u64, outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    let store = StateStore::new();
    let src = store.create_table("src", 0, true);
    let boom = store.create_table("boom", 0, true);
    let config = EngineConfig::with_threads(1).with_punctuation_interval(16);
    let mut builder = TopologyBuilder::new();
    let fast = builder.add_operator("fast", FastCounter { table: src }, store.clone(), config);
    let exploding =
        builder.add_operator("exploding", Exploder { table: boom }, store.clone(), config);
    builder.connect(fast, exploding, Route::map(|key: &u64| *key));
    let mut topology = builder
        .build(
            fast,
            exploding,
            TopologyConfig::default().with_concurrent(true),
        )
        .expect("valid dataflow");

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| topology.run(0..256u64)));
    let payload = result.expect_err("the operator panic must surface on the caller");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("boom on event 97"),
        "panic payload was replaced: {message:?}"
    );
}

/// Appends every event to a log cell and window-reads its full history; the
/// windowed table must survive reclamation (its history *is* its state).
struct WindowedLog {
    log: TableId,
}

impl StreamApp for WindowedLog {
    type Event = u64;
    type Output = Value;

    fn state_access(&self, _key: &u64, txn: &mut TxnBuilder) {
        txn.write(self.log, 0, udfs::add_delta(1));
        txn.window_read(self.log, 0, 1 << 40, udfs::window_sum());
    }

    fn post_process(&self, _key: &u64, outcome: &TxnOutcome) -> Value {
        outcome.committed as Value
    }
}

#[test]
fn sibling_watermarks_reclaim_their_own_tables_but_not_windowed_state() {
    // Regression for the per-table reclamation redesign: two operators share
    // one store with reclamation ON. The high-volume counter's watermark must
    // reclaim *its* table (shared-store operators can reclaim again — PR 4
    // disabled this wholesale) while the sibling's windowed log keeps every
    // version, even though the counter's watermark races far past the log's
    // timestamp domain.
    for concurrent in [false, true] {
        let store = StateStore::new();
        let hot = store.create_table("hot", 0, true);
        let log = store.create_table("log", 0, true);
        let config = EngineConfig::with_threads(test_threads(2))
            .with_punctuation_interval(32)
            .with_reclaim_after_batch(true);
        let mut builder = TopologyBuilder::new();
        let counter =
            builder.add_operator("counter", FastCounter { table: hot }, store.clone(), config);
        let windowed = builder.add_operator("windowed", WindowedLog { log }, store.clone(), config);
        // only every 16th event reaches the windowed stage, so the counter's
        // watermark runs ~16x ahead of the log's timestamps
        builder.connect(
            counter,
            windowed,
            Route::filter_map(|key: &u64| key.is_multiple_of(16).then_some(*key)),
        );
        let mut topology = builder
            .build(
                counter,
                windowed,
                TopologyConfig::default().with_concurrent(concurrent),
            )
            .expect("valid dataflow");
        let report = topology.run(0..1_024u64);
        // the filter forwards 64 of the 1024 events to the windowed terminal
        assert_eq!(report.outputs.len(), 64);

        // the counter's table was reclaimed down to ~one version per key...
        let hot_versions = store.table(hot).unwrap().version_count();
        assert!(
            hot_versions <= 64 + 32,
            "hot table must be reclaimed on a shared store, kept {hot_versions} (concurrent={concurrent})"
        );
        // ...while the windowed log retains its entire history: one version
        // per routed event (plus nothing truncated by the sibling watermark)
        let log_history = store.window_values(log, 0, 1, u64::MAX).unwrap();
        assert_eq!(
            log_history.len(),
            64,
            "sibling watermark truncated windowed state (concurrent={concurrent})"
        );
        // the final window sum proves the full history stayed readable
        assert_eq!(store.read_latest(log, 0).unwrap(), 64);
    }
}

/// Window-reads the full history of a table *written by the sibling*
/// operator — the cross-operator window case, which requires the table to be
/// pinned up front (the reader's automatic pin would land only after the
/// writer's first reclamation).
struct CrossWindowProbe {
    hot: TableId,
    out: TableId,
}

impl StreamApp for CrossWindowProbe {
    type Event = u64;
    type Output = Value;

    fn state_access(&self, _key: &u64, txn: &mut TxnBuilder) {
        txn.window_read(self.hot, 0, 1 << 40, udfs::window_sum());
        txn.write(self.out, 0, udfs::add_delta(1));
    }

    fn post_process(&self, _key: &u64, outcome: &TxnOutcome) -> Value {
        outcome.committed as Value
    }
}

#[test]
fn cross_operator_windows_survive_when_the_table_is_pinned_up_front() {
    // Operator A writes `hot`; operator B window-reads `hot` without ever
    // writing it. A's per-table reclamation would truncate `hot` before B's
    // engine ever sees a windowed access (pins are discovered per-engine,
    // per-batch), so the documented contract is an explicit up-front pin.
    let store = StateStore::new();
    let hot = store.create_table("hot", 0, true);
    let out = store.create_table("out", 0, true);
    store
        .pin_table(hot)
        .expect("cross-operator windowed tables are pinned before the run");
    let config = EngineConfig::with_threads(test_threads(2))
        .with_punctuation_interval(32)
        .with_reclaim_after_batch(true);
    let mut builder = TopologyBuilder::new();
    // writes one version of hot[0] per event
    struct HotWriter {
        hot: TableId,
    }
    impl StreamApp for HotWriter {
        type Event = u64;
        type Output = u64;
        fn state_access(&self, _key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.hot, 0, udfs::add_delta(1));
        }
        fn post_process(&self, key: &u64, _outcome: &TxnOutcome) -> u64 {
            *key
        }
    }
    let writer = builder.add_operator("writer", HotWriter { hot }, store.clone(), config);
    let probe = builder.add_operator(
        "probe",
        CrossWindowProbe { hot, out },
        store.clone(),
        config,
    );
    builder.connect(
        writer,
        probe,
        Route::filter_map(|key: &u64| key.is_multiple_of(64).then_some(*key)),
    );
    let mut topology = builder
        .build(writer, probe, TopologyConfig::default())
        .expect("valid dataflow");
    let report = topology.run(0..256u64);
    assert_eq!(report.outputs.len(), 4);

    // the pin kept every version the writer appended, despite the writer's
    // own per-batch reclamation running with reclaim_after_batch(true)
    let history = store.window_values(hot, 0, 1, u64::MAX).unwrap();
    assert_eq!(
        history.len(),
        256,
        "writer reclamation truncated a pinned cross-operator window table"
    );
}
