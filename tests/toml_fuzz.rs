//! Property tests for the zero-dependency TOML-subset parser behind the
//! scenario loader: arbitrary byte soup must produce a parse error, never a
//! panic, and any document assembled from the writer API must survive a
//! serialize → parse round trip unchanged (the contract `morphstream run`
//! and checkpoint-manifest readers rely on).

use proptest::prelude::*;

use morphstream_common::rng::DetRng;
use morphstream_common::toml::{TomlDocument, TomlTable, TomlValue};

/// Tokens that steer random input toward the parser's deep paths (section
/// headers, escapes, half-finished literals) faster than raw bytes do.
const TOKENS: &[&str] = &[
    "[",
    "]",
    "[[",
    "]]",
    "=",
    "\"",
    "\\",
    "#",
    "\n",
    " ",
    ",",
    ".",
    "-",
    "key",
    "table",
    "true",
    "false",
    "0",
    "9999999999999999999999",
    "1.5",
    "1e309",
    "\"unterminated",
    "\\q",
    "\u{7}",
    "é",
    "[a.b]",
    "= =",
];

fn printable_string(rng: &mut DetRng) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '_', '-', '.', ',', '/', '(', ')', '#', '[', ']', '=', '\'', '"', '\\',
        '\n', '\t', 'é', '→',
    ];
    let len = rng.next_below(12) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.next_below(ALPHABET.len() as u64) as usize])
        .collect()
}

fn bare_key(rng: &mut DetRng, ordinal: usize) -> String {
    const STEMS: &[&str] = &["key", "threads", "window", "seed-2", "IDS", "a_b"];
    format!(
        "{}{ordinal}",
        STEMS[rng.next_below(STEMS.len() as u64) as usize]
    )
}

fn scalar(rng: &mut DetRng) -> TomlValue {
    match rng.next_below(4) {
        0 => TomlValue::Integer(rng.next_u64() as i64),
        1 => TomlValue::Boolean(rng.next_bool(0.5)),
        // Multiples of 1/256 are exactly representable, so Display output
        // re-parses to the identical f64 (no NaN/inf, which do not re-parse).
        2 => TomlValue::Float((rng.next_range(0, 2_000_000) as i64 - 1_000_000) as f64 / 256.0),
        _ => TomlValue::String(printable_string(rng)),
    }
}

fn value(rng: &mut DetRng) -> TomlValue {
    if rng.next_bool(0.25) {
        TomlValue::Array((0..rng.next_below(5)).map(|_| scalar(rng)).collect())
    } else {
        scalar(rng)
    }
}

fn table(rng: &mut DetRng) -> TomlTable {
    let mut table = TomlTable::default();
    for ordinal in 0..rng.next_below(6) as usize {
        table.insert(bare_key(rng, ordinal), value(rng));
    }
    table
}

/// An arbitrary document in the writer API's canonical shape: a root table,
/// then uniquely-named `[section]` tables, then `[[array]]` entries.
fn document(seed: u64) -> TomlDocument {
    let mut rng = DetRng::new(seed);
    let mut doc = TomlDocument {
        root: table(&mut rng),
        ..TomlDocument::default()
    };
    for ordinal in 0..rng.next_below(4) as usize {
        doc.tables
            .push((format!("section-{ordinal}"), table(&mut rng)));
    }
    let arrays = rng.next_below(4) as usize;
    for ordinal in 0..arrays {
        // Repeated [[name]] entries are legal; reuse one name for half.
        let name = format!("entry-{}", ordinal.min(arrays / 2));
        doc.arrays.push((name, table(&mut rng)));
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (as lossy UTF-8) may fail to parse, but must never
    /// panic, hang, or return through anything but `Result`.
    #[test]
    fn byte_soup_errors_instead_of_panicking(
        bytes in proptest::collection::vec(0u16..256, 0..256),
    ) {
        let soup: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let text = String::from_utf8_lossy(&soup);
        let _ = TomlDocument::parse(&text);
    }

    /// Token soup reaches the structured error paths (section headers,
    /// escapes, oversized literals) that uniform bytes rarely hit.
    #[test]
    fn token_soup_errors_instead_of_panicking(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..64),
    ) {
        let text: String = picks.iter().map(|i| TOKENS[*i]).collect();
        let _ = TomlDocument::parse(&text);
    }

    /// A document built through the writer API serializes to text that parses
    /// back to the identical document — keys, section order, value types,
    /// escapes, and float precision all preserved.
    #[test]
    fn writer_documents_round_trip_through_the_parser(seed in 0u64..u64::MAX) {
        let doc = document(seed);
        let text = doc.to_toml_string();
        let reparsed = TomlDocument::parse(&text)
            .unwrap_or_else(|e| panic!("round trip failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(doc, reparsed);
    }
}
