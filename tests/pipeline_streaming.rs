//! Integration tests of the push-based `Pipeline` ingestion API: pushed
//! sessions must match the legacy `process()` wrapper exactly, the
//! `on_batch` hook must fire once per punctuation, and every engine driven
//! through the unified `TxnEngine` trait must agree on final state.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_baselines::{SStoreEngine, TStreamEngine};
use morphstream_common::config::test_threads;
use morphstream_common::{Value, WorkloadConfig};
use morphstream_workloads::{SlEvent, Source, StreamingLedgerApp};

fn config() -> WorkloadConfig {
    WorkloadConfig::streaming_ledger()
        .with_key_space(512)
        .with_udf_complexity_us(0)
        .with_abort_ratio(0.1)
        .with_txns_per_batch(128)
}

fn events() -> Vec<SlEvent> {
    StreamingLedgerApp::generate(&config(), 1_500, 0.7)
}

fn engine_config() -> EngineConfig {
    EngineConfig::with_threads(test_threads(4)).with_punctuation_interval(config().txns_per_batch)
}

/// Final per-key balances of a freshly built engine's store after `run`.
fn balances(store: &StateStore, app: &StreamingLedgerApp) -> Vec<Value> {
    let snapshot = store.snapshot_latest(app.accounts_table()).unwrap();
    (0..config().key_space).map(|k| snapshot[&k]).collect()
}

#[test]
fn pushing_across_uneven_boundaries_matches_process_exactly() {
    let config = config();
    let events = events();

    // Reference: the legacy pull-style wrapper.
    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let mut reference = MorphStream::new(ref_app, ref_store.clone(), engine_config());
    let expected = reference.process(events.clone());

    // Pushed session: same events arrive in chunks deliberately misaligned
    // with the punctuation interval of 128.
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store.clone(), engine_config());
    let mut pipeline = engine.pipeline();
    let mut stream = events.into_iter();
    for chunk in [1usize, 7, 130, 64, 500, usize::MAX] {
        pipeline.push_iter(stream.by_ref().take(chunk));
    }
    let report = pipeline.finish();

    // Identical batching, counts, outputs, and store state.
    assert_eq!(report.events(), expected.events());
    assert_eq!(report.committed, expected.committed);
    assert_eq!(report.aborted, expected.aborted);
    assert_eq!(report.outputs, expected.outputs);
    assert_eq!(report.batches.len(), expected.batches.len());
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let app = StreamingLedgerApp::new(&store, &config);
    assert_eq!(balances(&store, &app), balances(&ref_store, &ref_app));
}

#[test]
fn explicit_flushes_change_batching_but_not_final_state() {
    let config = config();
    let events = events();

    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let mut reference = MorphStream::new(ref_app, ref_store.clone(), engine_config());
    let expected = reference.process(events.clone());

    // Flush after every uneven chunk: partial batches everywhere. Batch
    // boundaries differ, but batches execute in timestamp order, so the
    // final store state must still match byte for byte.
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store.clone(), engine_config());
    let mut pipeline = engine.pipeline();
    let mut stream = events.into_iter();
    for chunk in [3usize, 100, 41, 999, usize::MAX] {
        pipeline.push_iter(stream.by_ref().take(chunk));
        pipeline.flush();
    }
    let report = pipeline.finish();

    assert_eq!(report.events(), expected.events());
    assert_eq!(report.committed, expected.committed);
    assert_eq!(report.aborted, expected.aborted);
    assert!(report.batches.len() > expected.batches.len());
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let app = StreamingLedgerApp::new(&store, &config);
    assert_eq!(balances(&store, &app), balances(&ref_store, &ref_app));
}

#[test]
fn on_batch_hook_fires_once_per_punctuation() {
    let config = config();
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store, engine_config());

    let fired = Arc::new(AtomicUsize::new(0));
    let seen_events = Arc::new(AtomicUsize::new(0));
    let (fired_in_hook, seen_in_hook) = (fired.clone(), seen_events.clone());
    let mut pipeline = engine.pipeline().on_batch(move |batch| {
        fired_in_hook.fetch_add(1, Ordering::Relaxed);
        seen_in_hook.fetch_add(batch.events, Ordering::Relaxed);
    });
    pipeline.push_iter(StreamingLedgerApp::source(&config, 1_000, 0.7));
    // Mid-session observability: batches processed so far are visible.
    assert_eq!(pipeline.report().batches.len(), 1_000 / 128);
    let report = pipeline.finish();

    // 1000 events at a punctuation interval of 128: 7 full + 1 partial batch.
    assert_eq!(report.batches.len(), 8);
    assert_eq!(fired.load(Ordering::Relaxed), 8);
    assert_eq!(seen_events.load(Ordering::Relaxed), 1_000);
}

#[test]
fn punctuation_interval_of_one_batches_every_event() {
    let config = config();
    let events = StreamingLedgerApp::generate(&config, 50, 0.7);

    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let mut reference = MorphStream::new(ref_app, ref_store.clone(), engine_config());
    let expected = reference.process(events.clone());

    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(
        app,
        store.clone(),
        EngineConfig::with_threads(test_threads(4)).with_punctuation_interval(1),
    );
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();

    // one batch per event, every batch a singleton, nothing buffered at finish
    assert_eq!(report.batches.len(), 50);
    assert!(report.batches.iter().all(|b| b.events == 1));
    assert_eq!(report.events(), 50);
    // batching differs from the reference but the state must not
    assert_eq!(report.committed, expected.committed);
    assert_eq!(report.aborted, expected.aborted);
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let app = StreamingLedgerApp::new(&store, &config);
    assert_eq!(balances(&store, &app), balances(&ref_store, &ref_app));
}

#[test]
fn flush_on_an_empty_session_is_a_noop_and_finish_adds_no_trailing_batch() {
    let config = config();
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store, engine_config());

    // flushes before anything was pushed are no-ops
    let mut pipeline = engine.pipeline();
    pipeline.flush();
    pipeline.flush();
    assert_eq!(pipeline.report().batches.len(), 0);

    // push exactly two punctuation intervals: both batches are cut by the
    // punctuation crossings, so the explicit flush afterwards has nothing to
    // do, and finish must not append an empty trailing batch either.
    pipeline.push_iter(StreamingLedgerApp::source(&config, 256, 0.7));
    assert_eq!(pipeline.report().batches.len(), 2);
    pipeline.flush();
    assert_eq!(pipeline.report().batches.len(), 2);
    let report = pipeline.finish();
    assert_eq!(report.batches.len(), 2);
    assert_eq!(report.events(), 256);
    assert!(report.batches.iter().all(|b| b.events == 128));

    // same contract under pipelined construction, where flush also drains
    // the in-flight construction stage
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(
        app,
        store,
        engine_config().with_pipelined_construction(true),
    );
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(StreamingLedgerApp::source(&config, 256, 0.7));
    pipeline.flush();
    assert_eq!(pipeline.report().batches.len(), 2);
    let report = pipeline.finish();
    assert_eq!(report.batches.len(), 2);
    assert_eq!(report.events(), 256);
}

#[test]
fn empty_pipeline_finishes_with_an_empty_report() {
    let config = config();
    for punctuation in [None, Some(64)] {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine_config = EngineConfig::with_threads(2);
        engine_config.punctuation_interval = punctuation;
        let mut engine = MorphStream::new(app, store, engine_config);
        let mut pipeline = engine.pipeline();
        pipeline.flush(); // flushing an empty buffer is a no-op
        let report = pipeline.finish();
        assert_eq!(report.events(), 0);
        assert_eq!(report.committed, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.outputs.is_empty());
        assert!(report.batches.is_empty());
        assert!(report.decision_trace().is_empty());
        assert_eq!(report.k_events_per_second(), 0.0);
    }
}

/// Drive any engine through the unified trait and return the final balances.
fn run_via_trait<E>(mut engine: E, store: &StateStore, events: Vec<SlEvent>) -> (usize, Vec<Value>)
where
    E: TxnEngine<Event = SlEvent, Output = bool>,
{
    let fired = Arc::new(AtomicUsize::new(0));
    let counter = fired.clone();
    let mut pipeline = engine.pipeline().on_batch(move |_| {
        counter.fetch_add(1, Ordering::Relaxed);
    });
    pipeline.push_iter(events);
    let report = pipeline.finish();
    assert_eq!(fired.load(Ordering::Relaxed), report.batches.len());
    let app = StreamingLedgerApp::new(store, &config());
    (report.events(), balances(store, &app))
}

#[test]
fn all_engines_agree_on_final_state_through_the_trait() {
    let config = config();
    let events = events();

    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let reference = run_via_trait(
        MorphStream::new(ref_app, ref_store.clone(), engine_config()),
        &ref_store,
        events.clone(),
    );
    assert_eq!(reference.0, events.len());

    let ts_store = StateStore::new();
    let ts_app = StreamingLedgerApp::new(&ts_store, &config);
    let tstream = run_via_trait(
        TStreamEngine::new(ts_app, ts_store.clone(), engine_config()),
        &ts_store,
        events.clone(),
    );
    assert_eq!(tstream, reference, "TStream diverged from MorphStream");

    let ss_store = StateStore::new();
    let ss_app = StreamingLedgerApp::new(&ss_store, &config);
    let sstore = run_via_trait(
        SStoreEngine::new(ss_app, ss_store.clone(), engine_config()),
        &ss_store,
        events,
    );
    assert_eq!(sstore, reference, "S-Store diverged from MorphStream");
}

#[test]
fn dropping_a_pipeline_handle_keeps_the_session_resumable() {
    let config = config();
    let events = events();

    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let mut reference = MorphStream::new(ref_app, ref_store.clone(), engine_config());
    let expected = reference.process(events.clone());

    // The session lives on the engine: dropping a handle mid-stream and
    // opening a new one continues exactly where the first left off.
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store.clone(), engine_config());
    let mut stream = events.into_iter();
    {
        let mut first = engine.pipeline();
        first.push_iter(stream.by_ref().take(200)); // 128 processed, 72 buffered
    } // dropped without finish()
    let mut second = engine.pipeline();
    second.push_iter(stream);
    let report = second.finish();

    assert_eq!(report.events(), expected.events());
    assert_eq!(report.committed, expected.committed);
    assert_eq!(report.aborted, expected.aborted);
    assert_eq!(report.batches.len(), expected.batches.len());
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let app = StreamingLedgerApp::new(&store, &config);
    assert_eq!(balances(&store, &app), balances(&ref_store, &ref_app));
}

#[test]
fn pipelined_push_sessions_match_the_serial_engine_and_report_overlap() {
    let config = config();
    let events = StreamingLedgerApp::generate(&config, 2_000, 0.7);

    let ref_store = StateStore::new();
    let ref_app = StreamingLedgerApp::new(&ref_store, &config);
    let mut reference = MorphStream::new(ref_app, ref_store.clone(), engine_config());
    let expected = reference.process(events.clone());

    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(
        app,
        store.clone(),
        engine_config().with_pipelined_construction(true),
    );
    let fired = Arc::new(AtomicUsize::new(0));
    let counter = fired.clone();
    let mut pipeline = engine.pipeline().on_batch(move |_| {
        counter.fetch_add(1, Ordering::Relaxed);
    });
    pipeline.push_iter(events);
    let report = pipeline.finish();

    // identical results: outputs, counts, batching, final state
    assert_eq!(report.events(), expected.events());
    assert_eq!(report.committed, expected.committed);
    assert_eq!(report.aborted, expected.aborted);
    assert_eq!(report.outputs, expected.outputs);
    assert_eq!(report.batches.len(), expected.batches.len());
    assert_eq!(fired.load(Ordering::Relaxed), report.batches.len());
    assert_eq!(store.state_digest(), ref_store.state_digest());

    // the overlap metric is live: the serial engine hides nothing, and the
    // overlap never exceeds the construction it is a share of.
    assert_eq!(
        expected.stage_timings.overlap,
        std::time::Duration::ZERO,
        "serial runs must not report hidden construction time"
    );
    assert!(report.stage_timings.construct > std::time::Duration::ZERO);
    assert!(report.stage_timings.overlap <= report.stage_timings.construct);

    // The pipelined engine overlaps construction of batch N+1 with execution
    // of batch N, so some overlap is normally observed — but it is a pure
    // wall-clock measurement, and a loaded scheduler can deschedule the
    // construction thread during every execute window. Overlap-positivity is
    // therefore reported as a warning here rather than asserted (the CI
    // smoke-bench's BENCH_fig16_smoke.json is the tracked overlap canary);
    // everything asserted above is deterministic.
    let mut hid_something = report.stage_timings.overlap > std::time::Duration::ZERO;
    for _attempt in 0..3 {
        if hid_something {
            break;
        }
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = MorphStream::new(
            app,
            store,
            engine_config().with_pipelined_construction(true),
        );
        let retry = engine.run(StreamingLedgerApp::generate(&config, 2_000, 0.7));
        hid_something = retry.stage_timings.overlap > std::time::Duration::ZERO;
    }
    if !hid_something {
        eprintln!(
            "warning: pipelined runs hid no construction time across several attempts \
             (expected on a single-core or heavily loaded machine; see the fig16 \
             smoke-bench artifact for the tracked overlap metric)"
        );
    }
}

#[test]
fn lazy_source_reports_its_size_and_streams_through() {
    let config = config();
    let source = StreamingLedgerApp::source(&config, 256, 0.5);
    assert_eq!(source.expected_events(), Some(256));

    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(app, store, engine_config());
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(source);
    assert_eq!(pipeline.finish().events(), 256);
}
