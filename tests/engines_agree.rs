//! Cross-crate integration tests: every engine (MorphStream under all fixed
//! scheduling decisions plus the correct baselines) must produce the same
//! final state as a sequential oracle on the same workload.

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, SchedulingDecision, TxnEngine};
use morphstream_baselines::{LockedSpeEngine, SStoreEngine, TStreamEngine};
use morphstream_common::config::test_threads;
use morphstream_common::{Value, WorkloadConfig};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

fn config() -> WorkloadConfig {
    WorkloadConfig::streaming_ledger()
        .with_key_space(512)
        .with_udf_complexity_us(0)
        .with_abort_ratio(0.1)
        .with_txns_per_batch(128)
}

fn events() -> Vec<SlEvent> {
    StreamingLedgerApp::generate(&config(), 1_500, 0.7)
}

/// Sequential oracle: apply the ledger semantics one event at a time.
fn oracle_balances(config: &WorkloadConfig, events: &[SlEvent]) -> Vec<Value> {
    let mut balances = vec![morphstream_workloads::sl::INITIAL_BALANCE; config.key_space as usize];
    for event in events {
        match event {
            SlEvent::Deposit { account, amount } => balances[*account as usize] += amount,
            SlEvent::Transfer { from, to, amount } => {
                if balances[*from as usize] >= *amount {
                    balances[*from as usize] -= amount;
                    balances[*to as usize] += amount;
                }
            }
        }
    }
    balances
}

fn final_balances(
    store: &StateStore,
    app: &StreamingLedgerApp,
    config: &WorkloadConfig,
) -> Vec<Value> {
    let snapshot = store.snapshot_latest(app.accounts_table()).unwrap();
    (0..config.key_space).map(|k| snapshot[&k]).collect()
}

#[test]
fn morphstream_adaptive_matches_the_sequential_oracle() {
    let config = config();
    let events = events();
    let expected = oracle_balances(&config, &events);

    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = MorphStream::new(
        app,
        store.clone(),
        EngineConfig::with_threads(test_threads(4))
            .with_punctuation_interval(config.txns_per_batch),
    );
    let report = engine.process(events);
    assert!(report.aborted > 0, "the workload must exercise aborts");
    let app = StreamingLedgerApp::new(&store, &config);
    assert_eq!(final_balances(&store, &app, &config), expected);
}

#[test]
fn every_fixed_scheduling_decision_matches_the_oracle() {
    let config = config();
    let events = events();
    let expected = oracle_balances(&config, &events);

    for decision in SchedulingDecision::all() {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = MorphStream::new(
            app,
            store.clone(),
            EngineConfig::with_threads(test_threads(4))
                .with_punctuation_interval(config.txns_per_batch),
        )
        .with_fixed_decision(decision);
        engine.process(events.clone());
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "decision {decision} diverged from the oracle"
        );
    }
}

#[test]
fn tstream_and_sstore_baselines_match_the_oracle() {
    let config = config();
    let events = events();
    let expected = oracle_balances(&config, &events);

    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = TStreamEngine::new(
            app,
            store.clone(),
            EngineConfig::with_threads(test_threads(4))
                .with_punctuation_interval(config.txns_per_batch),
        );
        engine.process(events.clone());
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "TStream diverged"
        );
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = SStoreEngine::new(
            app,
            store.clone(),
            EngineConfig::with_threads(test_threads(4))
                .with_punctuation_interval(config.txns_per_batch),
        );
        engine.process(events.clone());
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "S-Store diverged"
        );
    }
}

/// Push `events` one by one through the unified [`TxnEngine`] trait — the
/// same driver loop regardless of which system is underneath.
fn push_through_trait<E: TxnEngine<Event = SlEvent>>(engine: &mut E, events: &[SlEvent])
where
    SlEvent: Clone,
{
    let mut pipeline = engine.pipeline();
    for event in events.iter().cloned() {
        pipeline.push(event);
    }
    let report = pipeline.finish();
    assert_eq!(report.events(), events.len());
}

#[test]
fn engines_pushed_through_the_txn_engine_trait_match_the_oracle() {
    let config = config();
    let events = events();
    let expected = oracle_balances(&config, &events);
    let engine_config = EngineConfig::with_threads(test_threads(4))
        .with_punctuation_interval(config.txns_per_batch);

    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = MorphStream::new(app, store.clone(), engine_config);
        push_through_trait(&mut engine, &events);
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "MorphStream (pushed) diverged"
        );
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = TStreamEngine::new(app, store.clone(), engine_config);
        push_through_trait(&mut engine, &events);
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "TStream (pushed) diverged"
        );
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = SStoreEngine::new(app, store.clone(), engine_config);
        push_through_trait(&mut engine, &events);
        let app = StreamingLedgerApp::new(&store, &config);
        assert_eq!(
            final_balances(&store, &app, &config),
            expected,
            "S-Store (pushed) diverged"
        );
    }
    {
        // The locked conventional SPE is serializable but not event-time
        // ordered (see below): pushed through the same trait it must still
        // conserve money.
        let deposits: Value = events
            .iter()
            .filter_map(|e| match e {
                SlEvent::Deposit { amount, .. } => Some(*amount),
                _ => None,
            })
            .sum();
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = LockedSpeEngine::with_locks(app, store.clone(), engine_config);
        push_through_trait(&mut engine, &events);
        let app = StreamingLedgerApp::new(&store, &config);
        let total: Value = final_balances(&store, &app, &config).iter().sum();
        assert_eq!(
            total,
            config.key_space as Value * morphstream_workloads::sl::INITIAL_BALANCE + deposits,
            "locked SPE (pushed) lost or created money"
        );
    }
}

#[test]
fn locked_spe_with_locks_conserves_money_but_unlocked_may_not() {
    let config = config();
    let events = events();
    // The locked conventional SPE is serializable but does not enforce the
    // event-timestamp order the TSPEs (and the oracle) use, so per-account
    // balances may differ. The invariant it must uphold is conservation:
    // deposits never abort and transfers move money without creating it.
    let deposits: Value = events
        .iter()
        .filter_map(|e| match e {
            SlEvent::Deposit { amount, .. } => Some(*amount),
            _ => None,
        })
        .sum();
    let expected_total: Value =
        config.key_space as Value * morphstream_workloads::sl::INITIAL_BALANCE + deposits;

    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = LockedSpeEngine::with_locks(
        app,
        store.clone(),
        EngineConfig::with_threads(test_threads(4))
            .with_punctuation_interval(config.txns_per_batch),
    );
    engine.process(events.clone());
    let app = StreamingLedgerApp::new(&store, &config);
    let balances = final_balances(&store, &app, &config);
    assert!(balances.iter().all(|b| *b >= 0));
    assert_eq!(balances.iter().sum::<Value>(), expected_total);

    // The unlocked variant processes everything but gives no serializability
    // guarantee; the only invariant we can check is that it does not crash
    // and reports every event.
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, &config);
    let mut engine = LockedSpeEngine::without_locks(
        app,
        store.clone(),
        EngineConfig::with_threads(test_threads(4))
            .with_punctuation_interval(config.txns_per_batch),
    );
    let report = engine.process(events);
    assert_eq!(report.events(), 1_500);
    let app = StreamingLedgerApp::new(&store, &config);
    let unlocked_total: Value = final_balances(&store, &app, &config).iter().sum();
    // lost updates can only lose money relative to the serializable total
    // plus the deposits, never create it out of thin air beyond the oracle
    assert!(unlocked_total <= expected_total);
}
