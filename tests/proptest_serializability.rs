//! Property-based end-to-end test: for arbitrary small ledger workloads and
//! arbitrary scheduling decisions, the committed state MorphStream produces
//! equals the state of a sequential oracle, and aborted transactions leave no
//! trace.

use proptest::prelude::*;

use morphstream::storage::StateStore;
use morphstream::{
    AbortHandling, EngineConfig, ExplorationStrategy, Granularity, MorphStream, SchedulingDecision,
    StreamApp, TxnBuilder, TxnEngine, TxnOutcome,
};
use morphstream_common::{StateRef, TableId, Value};
use morphstream_tpg::udfs;

#[derive(Debug, Clone)]
enum Op {
    Deposit { account: u64, amount: Value },
    Transfer { from: u64, to: u64, amount: Value },
}

struct Ledger {
    accounts: TableId,
}

impl StreamApp for Ledger {
    type Event = Op;
    type Output = bool;

    fn state_access(&self, event: &Op, txn: &mut TxnBuilder) {
        match event {
            Op::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            Op::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, _event: &Op, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }
}

const ACCOUNTS: u64 = 8;
const INITIAL: Value = 50;

/// Sequential oracle: final balances plus the commit/abort outcome of every
/// event in timestamp order (the serializable history the engine must match).
fn oracle_full(events: &[Op]) -> (Vec<Value>, Vec<bool>) {
    let mut balances = vec![INITIAL; ACCOUNTS as usize];
    let mut outcomes = Vec::with_capacity(events.len());
    for event in events {
        match event {
            Op::Deposit { account, amount } => {
                balances[*account as usize] += amount;
                outcomes.push(true);
            }
            Op::Transfer { from, to, amount } => {
                let ok = *from != *to && balances[*from as usize] >= *amount;
                if ok {
                    balances[*from as usize] -= amount;
                    balances[*to as usize] += amount;
                }
                outcomes.push(ok);
            }
        }
    }
    (balances, outcomes)
}

fn oracle(events: &[Op]) -> Vec<Value> {
    oracle_full(events).0
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ACCOUNTS, 1..30i64).prop_map(|(account, amount)| Op::Deposit { account, amount }),
        (0..ACCOUNTS, 0..ACCOUNTS, 1..60i64)
            .prop_filter_map("self transfer", |(from, to, amount)| {
                (from != to).then_some(Op::Transfer { from, to, amount })
            }),
    ]
}

fn decision_strategy() -> impl Strategy<Value = SchedulingDecision> {
    (
        prop_oneof![
            Just(ExplorationStrategy::StructuredBfs),
            Just(ExplorationStrategy::StructuredDfs),
            Just(ExplorationStrategy::NonStructured),
        ],
        prop_oneof![Just(Granularity::Fine), Just(Granularity::Coarse)],
        prop_oneof![Just(AbortHandling::Eager), Just(AbortHandling::Lazy)],
    )
        .prop_map(
            |(exploration, granularity, abort_handling)| SchedulingDecision {
                exploration,
                granularity,
                abort_handling,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn committed_state_matches_sequential_oracle(
        events in proptest::collection::vec(op_strategy(), 1..80),
        decision in decision_strategy(),
        threads in 1usize..4,
        punctuation in 1usize..40,
    ) {
        let expected = oracle(&events);

        let store = StateStore::new();
        let accounts = store.create_table("accounts", INITIAL, false);
        store.preallocate_range(accounts, ACCOUNTS).unwrap();
        let mut engine = MorphStream::new(
            Ledger { accounts },
            store.clone(),
            EngineConfig::with_threads(threads).with_punctuation_interval(punctuation),
        )
        .with_fixed_decision(decision);
        let report = engine.process(events.clone());

        prop_assert_eq!(report.events(), events.len());
        let snapshot = store.snapshot_latest(accounts).unwrap();
        let got: Vec<Value> = (0..ACCOUNTS).map(|k| snapshot[&k]).collect();
        prop_assert_eq!(got, expected);

        // money conservation: total = initial + committed deposits
        let committed_deposits: Value = events
            .iter()
            .zip(&report.outputs)
            .filter_map(|(event, committed)| match (event, committed) {
                (Op::Deposit { amount, .. }, true) => Some(*amount),
                _ => None,
            })
            .sum();
        let total: Value = snapshot.values().sum();
        prop_assert_eq!(total, INITIAL * ACCOUNTS as Value + committed_deposits);
    }

    /// Random batches pushed through `Pipeline::push_iter` with arbitrary
    /// chunking and punctuation boundaries, across the {1,2,4,8} thread
    /// matrix with pipelined construction on and off, must all reach the
    /// identical final `StateStore` snapshot and the identical serializable
    /// per-event history.
    #[test]
    fn pushed_pipelined_sessions_match_the_oracle_across_thread_counts(
        events in proptest::collection::vec(op_strategy(), 1..80),
        punctuation in 1usize..40,
        threads_idx in 0usize..4,
        pipelined_idx in 0usize..2,
        chunk in 1usize..50,
    ) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        let pipelined = pipelined_idx == 1;
        let (expected, expected_outcomes) = oracle_full(&events);

        let store = StateStore::new();
        let accounts = store.create_table("accounts", INITIAL, false);
        store.preallocate_range(accounts, ACCOUNTS).unwrap();
        let mut engine = MorphStream::new(
            Ledger { accounts },
            store.clone(),
            EngineConfig::with_threads(threads)
                .with_punctuation_interval(punctuation)
                .with_pipelined_construction(pipelined),
        );
        let mut pipeline = engine.pipeline();
        for part in events.chunks(chunk) {
            pipeline.push_iter(part.iter().cloned());
        }
        let report = pipeline.finish();

        prop_assert_eq!(report.events(), events.len());
        // serializable history: per-event outcomes equal the sequential oracle
        prop_assert_eq!(&report.outputs, &expected_outcomes);
        let snapshot = store.snapshot_latest(accounts).unwrap();
        let got: Vec<Value> = (0..ACCOUNTS).map(|k| snapshot[&k]).collect();
        prop_assert_eq!(got, expected);
    }
}
