//! Determinism across thread counts: the same workload seed must produce a
//! byte-identical final-state digest and per-event output history on every
//! `EngineConfig::with_threads(1..=8)`, for every bundled workload generator
//! (SL, GS, OSED, SEA, TP, Dynamic) — with and without pipelined
//! construction. This catches data races in the sharded TPG builder and the
//! construction/execution pipeline that the oracle-equivalence tests (which
//! fix one thread count per run) can miss.

use std::fmt::Debug;

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, StreamApp, TxnEngine};
use morphstream_common::config::test_threads;
use morphstream_common::{Timestamp, WorkloadConfig};
use morphstream_workloads::{
    DynamicWorkload, GrepSumApp, OsedApp, SeaApp, SeaGenerator, StreamingLedgerApp,
    TollProcessingApp, TweetGenerator,
};

/// FNV-1a over the `Debug` rendering of every output, in event order.
fn output_digest<O: Debug>(outputs: &[O]) -> u64 {
    let mut hash = morphstream_common::hash::Fnv1a::new();
    for output in outputs {
        hash.update(format!("{output:?}|").as_bytes());
    }
    hash.finish()
}

/// Condensed fingerprint of one run: final visible state, output history,
/// commit/abort counts.
#[derive(Debug, PartialEq, Eq)]
struct RunDigest {
    state: u64,
    outputs: u64,
    committed: usize,
    aborted: usize,
}

/// Build a fresh engine via `make`, run the workload at `threads` workers,
/// and fingerprint the result.
fn run_once<A, F>(make: &F, threads: usize, pipelined: bool) -> RunDigest
where
    A: StreamApp,
    A::Output: Debug,
    F: Fn() -> (A, StateStore, Vec<A::Event>, EngineConfig),
{
    let (app, store, events, config) = make();
    let config = EngineConfig {
        num_threads: threads,
        ..config
    }
    .with_pipelined_construction(pipelined);
    let mut engine = MorphStream::new(app, store.clone(), config);
    let report = engine.run(events);
    RunDigest {
        state: store.state_digest(),
        outputs: output_digest(&report.outputs),
        committed: report.committed,
        aborted: report.aborted,
    }
}

/// The digest must be identical for threads 1..=8, serial and pipelined.
fn assert_deterministic<A, F>(workload: &str, make: F)
where
    A: StreamApp,
    A::Output: Debug,
    F: Fn() -> (A, StateStore, Vec<A::Event>, EngineConfig),
{
    let reference = run_once(&make, 1, false);
    for threads in 2..=8usize {
        let digest = run_once(&make, threads, false);
        assert_eq!(
            digest, reference,
            "{workload}: serial run with {threads} threads diverged"
        );
    }
    for threads in [1, 2, test_threads(4)] {
        let digest = run_once(&make, threads, true);
        assert_eq!(
            digest, reference,
            "{workload}: pipelined run with {threads} threads diverged"
        );
    }
}

fn small(config: WorkloadConfig) -> WorkloadConfig {
    config
        .with_key_space(256)
        .with_udf_complexity_us(0)
        .with_txns_per_batch(128)
}

#[test]
fn streaming_ledger_is_deterministic_across_thread_counts() {
    assert_deterministic("SL", || {
        let config = small(WorkloadConfig::streaming_ledger()).with_abort_ratio(0.1);
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let events = StreamingLedgerApp::generate(&config, 600, 0.7);
        let engine_config = EngineConfig::with_threads(1).with_punctuation_interval(128);
        (app, store, events, engine_config)
    });
}

#[test]
fn grep_sum_is_deterministic_across_thread_counts() {
    assert_deterministic("GS", || {
        let config = small(WorkloadConfig::grep_sum());
        let store = StateStore::new();
        let app = GrepSumApp::new(&store, &config);
        let events = GrepSumApp::generate(&config, 600);
        let engine_config = EngineConfig::with_threads(1).with_punctuation_interval(128);
        (app, store, events, engine_config)
    });
}

#[test]
fn toll_processing_is_deterministic_across_thread_counts() {
    assert_deterministic("TP", || {
        let config = small(WorkloadConfig::toll_processing());
        let store = StateStore::new();
        let app = TollProcessingApp::new(&store, &config);
        let events = TollProcessingApp::generate(&config, 600);
        let engine_config = EngineConfig::with_threads(1).with_punctuation_interval(128);
        (app, store, events, engine_config)
    });
}

#[test]
fn osed_is_deterministic_across_thread_counts() {
    assert_deterministic("OSED", || {
        let generator = TweetGenerator {
            tweets: 400,
            window: 100,
            ..TweetGenerator::default()
        };
        let (tweets, _expected) = generator.generate();
        let store = StateStore::new();
        let app = OsedApp::new(&store, generator.window as Timestamp + 1);
        let engine_config = EngineConfig::with_threads(1)
            .with_punctuation_interval(generator.window + 1)
            .with_reclaim_after_batch(false);
        (app, store, tweets, engine_config)
    });
}

#[test]
fn sea_is_deterministic_across_thread_counts() {
    assert_deterministic("SEA", || {
        let generator = SeaGenerator {
            events: 600,
            stocks: 50,
            ..SeaGenerator::default()
        };
        let events = generator.generate();
        let store = StateStore::new();
        let app = SeaApp::new(&store, generator.stocks, 100);
        let engine_config = EngineConfig::with_threads(1)
            .with_punctuation_interval(128)
            .with_reclaim_after_batch(false);
        (app, store, events, engine_config)
    });
}

#[test]
fn dynamic_workload_is_deterministic_across_thread_counts() {
    assert_deterministic("Dynamic", || {
        let config = small(WorkloadConfig::streaming_ledger());
        let workload = DynamicWorkload::new(config, 150);
        let mut events = Vec::new();
        for (_, phase_events) in workload.all_phases() {
            events.extend(phase_events);
        }
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let engine_config = EngineConfig::with_threads(1).with_punctuation_interval(128);
        (app, store, events, engine_config)
    });
}
