//! Equivalence and determinism proof for the operator-topology runtime: a
//! fused single-operator TP application and its two-operator topology split
//! must produce identical `state_digest()`s and identical per-event outputs,
//! across worker-thread counts (`MORPH_TEST_THREADS`), pipelined
//! construction on/off, the serial wave loop vs the concurrent runtime, and
//! keyed statistics parallelism 1 vs 4 — while the topology is driven
//! exclusively through the *generic* `TxnEngine` surface
//! (`Pipeline::push_iter` and the bench harness's `drive` loop), never
//! through topology-specific calls.

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, RunReport, TopologyConfig, TxnEngine};
use morphstream_baselines::SystemUnderTest;
use morphstream_bench::harness::drive;
use morphstream_common::config::test_threads;
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{TollProcessingApp, TpEvent};

fn config() -> WorkloadConfig {
    WorkloadConfig::toll_processing()
        .with_key_space(512)
        .with_udf_complexity_us(0)
        .with_abort_ratio(0.15)
        .with_txns_per_batch(128)
}

fn events() -> Vec<TpEvent> {
    TollProcessingApp::generate(&config(), 1_200)
}

fn engine_config(threads: usize, pipelined: bool) -> EngineConfig {
    EngineConfig::with_threads(threads)
        .with_punctuation_interval(config().txns_per_batch)
        .with_pipelined_construction(pipelined)
}

/// Run the fused single-operator app; returns the store digest and report.
fn run_fused(threads: usize, pipelined: bool) -> (u64, RunReport<bool>) {
    let store = StateStore::new();
    let app = TollProcessingApp::new(&store, &config());
    let mut engine = MorphStream::new(app, store.clone(), engine_config(threads, pipelined));
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(events());
    let report = pipeline.finish();
    (store.state_digest(), report)
}

/// Run the two-operator split through the generic `Pipeline` session.
fn run_topology(threads: usize, pipelined: bool) -> (u64, RunReport<bool>) {
    run_topology_with(threads, pipelined, false, 1)
}

/// The split with explicit runtime choices: serial wave loop vs concurrent
/// per-operator threads, and keyed statistics parallelism.
fn run_topology_with(
    threads: usize,
    pipelined: bool,
    concurrent: bool,
    parallelism: usize,
) -> (u64, RunReport<bool>) {
    let store = StateStore::new();
    let mut topology = TollProcessingApp::topology_with(
        &store,
        &config(),
        engine_config(threads, pipelined),
        TopologyConfig::default().with_concurrent(concurrent),
        parallelism,
    );
    let mut pipeline = topology.pipeline();
    pipeline.push_iter(events());
    let report = pipeline.finish();
    (store.state_digest(), report)
}

#[test]
fn split_topology_matches_the_fused_app_across_threads_and_pipelining() {
    let (expected_digest, expected) = run_fused(1, false);
    assert_eq!(expected.events(), 1_200);
    assert!(expected.aborted > 0, "the workload must exercise aborts");

    for threads in [1, test_threads(4)] {
        for pipelined in [false, true] {
            // the fused app itself is deterministic across configurations
            let (fused_digest, fused) = run_fused(threads, pipelined);
            assert_eq!(
                fused_digest, expected_digest,
                "fused run diverged at threads={threads} pipelined={pipelined}"
            );
            assert_eq!(fused.outputs, expected.outputs);

            // ... and the topology split reproduces it bit for bit
            let (digest, report) = run_topology(threads, pipelined);
            assert_eq!(
                digest, expected_digest,
                "topology diverged at threads={threads} pipelined={pipelined}"
            );
            assert_eq!(
                report.outputs, expected.outputs,
                "topology outputs diverged at threads={threads} pipelined={pipelined}"
            );
            assert_eq!(report.events(), expected.events());
        }
    }
}

#[test]
fn concurrent_runtime_and_keyed_parallelism_match_the_serial_wave_loop() {
    // The acceptance matrix of the concurrent-runtime redesign: digests and
    // outputs must be identical across {serial, concurrent} × parallelism
    // {1, 4} × threads {1, MORPH_TEST_THREADS} × pipelining on/off.
    let (expected_digest, expected) = run_fused(1, false);
    for concurrent in [false, true] {
        for parallelism in [1usize, 4] {
            for threads in [1, test_threads(4)] {
                for pipelined in [false, true] {
                    let (digest, report) =
                        run_topology_with(threads, pipelined, concurrent, parallelism);
                    let label = format!(
                        "concurrent={concurrent} parallelism={parallelism} \
                         threads={threads} pipelined={pipelined}"
                    );
                    assert_eq!(digest, expected_digest, "digest diverged at {label}");
                    assert_eq!(
                        report.outputs, expected.outputs,
                        "outputs diverged at {label}"
                    );
                    assert_eq!(report.events(), expected.events());
                    // per-instance rows: toll-charge + road-stats{#i}
                    assert_eq!(report.operators.len(), 1 + parallelism, "{label}");
                    let committed: usize = report.operators.iter().map(|op| op.committed).sum();
                    assert_eq!(report.committed, committed, "{label}");
                    // edge rows are always present; back-pressure counters
                    // only tick under the concurrent runtime
                    assert_eq!(report.edges.len(), 2);
                    if !concurrent {
                        assert!(report.edges.iter().all(|e| e.queue_full_waits == 0));
                    }
                }
            }
        }
    }
}

#[test]
fn per_operator_reports_sum_to_the_topology_totals() {
    let (_, report) = run_topology(test_threads(4), false);

    assert_eq!(report.operators.len(), 2);
    assert_eq!(report.operators[0].name, "toll-charge");
    assert_eq!(report.operators[1].name, "road-stats");

    // every operator saw every event (the charge outcome rides along instead
    // of being filtered out, so the streams stay 1:1)
    assert_eq!(report.operators[0].events, 1_200);
    assert_eq!(report.operators[1].events, 1_200);

    // per-operator counts sum to the top-level counts
    let committed: usize = report.operators.iter().map(|op| op.committed).sum();
    let aborted: usize = report.operators.iter().map(|op| op.aborted).sum();
    assert_eq!(report.committed, committed);
    assert_eq!(report.aborted, aborted);

    // the aborts all come from the charge operator; the statistics operator
    // only applies no-op deltas for uncharged events
    assert_eq!(report.operators[1].aborted, 0);
    assert_eq!(report.aborted, report.operators[0].aborted);

    // stage timings aggregate too
    let summed: std::time::Duration = report
        .operators
        .iter()
        .map(|op| op.stage_timings.construct)
        .sum();
    assert_eq!(report.stage_timings.construct, summed);
}

#[test]
fn topology_runs_through_the_generic_bench_drive_loop() {
    let fused_store = StateStore::new();
    let fused_app = TollProcessingApp::new(&fused_store, &config());
    let mut fused = MorphStream::new(
        fused_app,
        fused_store.clone(),
        engine_config(test_threads(4), false),
    );
    let fused_report = drive(SystemUnderTest::MorphStream, &mut fused, events());

    let store = StateStore::new();
    let mut topology =
        TollProcessingApp::topology(&store, &config(), engine_config(test_threads(4), false));
    // the very same generic driver the figure harnesses use
    let report = drive(SystemUnderTest::Topology, &mut topology, events());

    assert_eq!(store.state_digest(), fused_store.state_digest());
    assert_eq!(report.system, SystemUnderTest::Topology);
    assert_eq!(report.aborted, fused_report.aborted);
    assert!(report.k_events_per_second > 0.0);
    // committed counts both operators, so it is the fused count plus one
    // (always-committing) statistics transaction per event
    assert_eq!(report.committed, fused_report.committed + 1_200);
}

#[test]
fn topology_sessions_are_reusable_and_flush_aligned_with_punctuations() {
    let store = StateStore::new();
    let mut topology =
        TollProcessingApp::topology(&store, &config(), engine_config(test_threads(4), true));

    // First session: uneven chunks with explicit mid-stream flushes.
    let mut pipeline = topology.pipeline();
    let mut stream = events().into_iter();
    pipeline.push_iter(stream.by_ref().take(300));
    pipeline.flush();
    assert_eq!(pipeline.report().events(), 300);
    pipeline.push_iter(stream);
    let first = pipeline.finish();
    assert_eq!(first.events(), 1_200);
    assert_eq!(first.operators.len(), 2);

    // Second session starts fresh on the same topology.
    let second = topology.run(events());
    assert_eq!(second.events(), 1_200);
    assert_eq!(second.batches.first().map(|b| b.batch), Some(0));

    // Both sessions applied the same stream to the same store; the digest is
    // a pure function of the (deterministic) applied updates.
    let reference = {
        let store = StateStore::new();
        let mut topology = TollProcessingApp::topology(&store, &config(), engine_config(1, false));
        topology.run(events());
        topology.run(events());
        store.state_digest()
    };
    assert_eq!(store.state_digest(), reference);
}
