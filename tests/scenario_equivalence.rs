//! Digest equivalence for the TOML scenario catalog: every multi-stage
//! scenario, loaded from its `scenarios/*.toml` file and run as a topology,
//! must produce the exact `state_digest()` of a *fused* single-operator
//! oracle that performs all stages' writes inside one transaction per event
//! over the merged feed — across the serial wave loop vs the concurrent
//! runtime and worker-thread counts. For `adclick.toml` this proves the
//! multi-entry dispatch (two feeds entering through different entry stages)
//! is equivalent to a single merged feed; for `exchange.toml` it proves
//! cross-stage abort semantics (an unfilled sell must not be tallied) match
//! a fused withdraw-and-tally transaction that relies on full-transaction
//! rollback.

use std::path::PathBuf;

use morphstream::app::result_or_zero;
use morphstream::storage::StateStore;
use morphstream::{udfs, EngineConfig, MorphStream, StreamApp, TxnBuilder, TxnEngine, TxnOutcome};
use morphstream_common::config::test_threads;
use morphstream_common::TableId;
use morphstream_dataflow::{load_file, EventKind, LoadOverrides, ScenarioEvent};

fn scenario_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name)
}

/// Load `scenarios/<name>` with the given runtime overrides, run it to
/// completion, and return `(state_digest, terminal_outputs, aborted)`.
fn run_scenario(name: &str, threads: usize, concurrent: bool) -> (u64, usize, usize) {
    let overrides = LoadOverrides {
        threads: Some(threads),
        concurrent: Some(concurrent),
    };
    let mut loaded = load_file(&scenario_path(name), &overrides).expect("scenario loads");
    let events = std::mem::take(&mut loaded.events);
    let mut pipeline = loaded.topology.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();
    (loaded.store.state_digest(), report.events(), report.aborted)
}

/// The merged, timestamp-sorted event feed of `scenarios/<name>` — exactly
/// what the loader hands the topology's dispatcher.
fn merged_events(name: &str) -> Vec<ScenarioEvent> {
    load_file(&scenario_path(name), &LoadOverrides::default())
        .expect("scenario loads")
        .events
}

/// Run a fused oracle app serially over the merged feed with the same
/// punctuation interval the scenario uses.
fn run_oracle<A>(
    store: &StateStore,
    app: A,
    events: Vec<ScenarioEvent>,
    punctuation: usize,
) -> (u64, usize, usize)
where
    A: StreamApp<Event = ScenarioEvent> + 'static,
    A::Output: Send + 'static,
{
    let config = EngineConfig::with_threads(1).with_punctuation_interval(punctuation);
    let mut engine = MorphStream::new(app, store.clone(), config);
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();
    (store.state_digest(), report.events(), report.aborted)
}

// ---------------------------------------------------------------------------
// adclick.toml — two feeds, two entry stages, windowed join at the terminal
// ---------------------------------------------------------------------------

/// Fuses `imp-tally` + `click-tally` + `attribution` into one operator: an
/// impression counts into the impression tally and accumulates spend; a
/// click counts into the click tally, reads the impression window, and
/// records the attribution — all in a single transaction. Tables are created
/// in the loader's stage-declaration order so table ids line up with the
/// topology store.
struct AdClickOracle {
    imp_counts: TableId,
    click_counts: TableId,
    impressions: TableId,
    attributed: TableId,
    window: u64,
}

impl AdClickOracle {
    fn new(store: &StateStore, window: u64) -> Self {
        Self {
            imp_counts: store.create_table("imp-tally.counts", 0, true),
            click_counts: store.create_table("click-tally.counts", 0, true),
            impressions: store.create_table("attribution.impressions", 0, true),
            attributed: store.create_table("attribution.attributed", 0, true),
            window,
        }
    }
}

impl StreamApp for AdClickOracle {
    type Event = ScenarioEvent;
    type Output = bool;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.kind == EventKind::Click {
            txn.write(self.click_counts, ev.key, udfs::add_delta(1));
            txn.window_read(self.impressions, ev.key, self.window, udfs::window_sum());
            txn.write(self.attributed, ev.key, udfs::add_delta(1));
        } else {
            txn.write(self.imp_counts, ev.key, udfs::add_delta(1));
            txn.write(self.impressions, ev.key, udfs::add_delta(ev.amount));
        }
    }

    fn post_process(&self, _ev: &ScenarioEvent, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }
}

#[test]
fn adclick_topology_matches_the_fused_merged_feed_oracle_on_both_runtimes() {
    let events = merged_events("adclick.toml");
    assert_eq!(events.len(), 4096);
    // Both entry ordinals are represented in the merged feed.
    assert!(events.iter().any(|ev| ev.feed == 0));
    assert!(events.iter().any(|ev| ev.feed == 1));

    let oracle_store = StateStore::new();
    let oracle = AdClickOracle::new(&oracle_store, 512);
    let (oracle_digest, oracle_events, oracle_aborted) =
        run_oracle(&oracle_store, oracle, events, 256);
    assert_eq!(oracle_events, 4096);
    assert_eq!(oracle_aborted, 0);

    for concurrent in [false, true] {
        for threads in [1, test_threads(4)] {
            let (digest, outputs, _) = run_scenario("adclick.toml", threads, concurrent);
            assert_eq!(
                digest, oracle_digest,
                "adclick digest diverged from fused oracle (concurrent={concurrent}, threads={threads})"
            );
            // Every event reaches the terminal through the forward routes.
            assert_eq!(outputs, 4096);
        }
    }
}

// ---------------------------------------------------------------------------
// exchange.toml — merged buy/sell feeds, aborting book, committed-only tally
// ---------------------------------------------------------------------------

/// Fuses `book` + `trade-tally`: the book write and the per-trader trade
/// count share one transaction, so an unfilled sell (withdraw abort) rolls
/// the tally increment back — mirroring the topology's `committed` route,
/// which only forwards executed orders to the tally stage.
struct ExchangeOracle {
    book: TableId,
    counts: TableId,
}

impl ExchangeOracle {
    fn new(store: &StateStore, restock: i64) -> Self {
        Self {
            book: store.create_table("book.book", restock, true),
            counts: store.create_table("trade-tally.counts", 0, true),
        }
    }
}

impl StreamApp for ExchangeOracle {
    type Event = ScenarioEvent;
    type Output = i64;

    fn state_access(&self, ev: &ScenarioEvent, txn: &mut TxnBuilder) {
        if ev.kind == EventKind::Sell {
            txn.write(self.book, ev.key2, udfs::withdraw(ev.amount));
        } else {
            txn.write(self.book, ev.key2, udfs::add_delta(ev.amount));
        }
        txn.write(self.counts, ev.key, udfs::add_delta(1));
    }

    fn post_process(&self, _ev: &ScenarioEvent, outcome: &TxnOutcome) -> i64 {
        result_or_zero(outcome, 0)
    }
}

#[test]
fn exchange_topology_matches_the_fused_oracle_and_aborts_unfilled_sells() {
    let events = merged_events("exchange.toml");
    assert_eq!(events.len(), 4096);

    let oracle_store = StateStore::new();
    let oracle = ExchangeOracle::new(&oracle_store, 120);
    let (oracle_digest, oracle_events, oracle_aborted) =
        run_oracle(&oracle_store, oracle, events, 256);
    assert_eq!(oracle_events, 4096);
    assert!(
        oracle_aborted > 0,
        "the restock level must leave some sells unfilled for the test to bite"
    );

    for concurrent in [false, true] {
        for threads in [1, test_threads(4)] {
            let (digest, outputs, aborted) = run_scenario("exchange.toml", threads, concurrent);
            assert_eq!(
                digest, oracle_digest,
                "exchange digest diverged from fused oracle (concurrent={concurrent}, threads={threads})"
            );
            // The `committed` route drops exactly the aborted orders.
            assert_eq!(outputs, 4096 - oracle_aborted);
            assert_eq!(aborted, oracle_aborted);
        }
    }
}
